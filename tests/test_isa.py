"""Unit + property tests for the ISA: encoding, decoding, validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mcu.isa import (
    DecodeError,
    Instruction,
    Mode,
    NUM_REGISTERS,
    OPERAND_SHAPE,
    Op,
    Operand,
    absolute,
    decode,
    imm,
    indexed,
    indirect,
    reg,
)


def _decode_words(words):
    image = {2 * i: w for i, w in enumerate(words)}
    return decode(lambda addr: image.get(addr, 0), 0)


class TestOperands:
    def test_register_render(self):
        assert reg(4).render() == "r4"

    def test_immediate_render(self):
        assert imm(10).render() == "#10"

    def test_absolute_render(self):
        assert absolute(0x4400).render() == "&0x4400"

    def test_indexed_render(self):
        assert indexed(4, 5).render() == "4(r5)"

    def test_indirect_render(self):
        assert indirect(7).render() == "@r7"

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            Operand(Mode.REG, reg=16)

    def test_register_mode_takes_no_value(self):
        with pytest.raises(ValueError):
            Operand(Mode.REG, reg=1, value=5)

    def test_immediate_wraps_to_16_bits(self):
        assert imm(-1).value == 0xFFFF

    def test_extension_modes(self):
        assert imm(1).needs_extension
        assert absolute(2).needs_extension
        assert indexed(0, 1).needs_extension
        assert not reg(1).needs_extension
        assert not indirect(1).needs_extension


class TestInstructionValidation:
    def test_mov_requires_both_operands(self):
        with pytest.raises(ValueError):
            Instruction(Op.MOV, src=imm(1))

    def test_nop_takes_no_operands(self):
        with pytest.raises(ValueError):
            Instruction(Op.NOP, src=imm(1))

    def test_immediate_destination_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.MOV, src=imm(1), dst=imm(2))

    def test_out_allows_immediate_port(self):
        ins = Instruction(Op.OUT, src=reg(4), dst=imm(7))
        assert ins.dst.value == 7

    def test_sizes(self):
        assert Instruction(Op.NOP).size_words == 2
        assert Instruction(Op.MOV, src=imm(1), dst=reg(2)).size_words == 3
        assert (
            Instruction(Op.MOV, src=imm(1), dst=absolute(0x4400)).size_words == 4
        )

    def test_cycle_costs_reflect_complexity(self):
        simple = Instruction(Op.MOV, src=reg(1), dst=reg(2))
        complex_ = Instruction(Op.MOV, src=absolute(2), dst=indexed(4, 3))
        assert complex_.cycles() > simple.cycles()

    def test_stack_ops_cost_more(self):
        assert Instruction(Op.RET).cycles() > Instruction(Op.NOP).cycles()

    def test_render(self):
        ins = Instruction(Op.ADD, src=imm(1), dst=reg(4))
        assert ins.render() == "add #1, r4"
        assert Instruction(Op.RET).render() == "ret"


def _operand_strategy(extended_ok=True):
    modes = [Mode.REG, Mode.IND]
    if extended_ok:
        modes += [Mode.IMM, Mode.ABS, Mode.IDX]

    def build(mode, register, value):
        if mode in (Mode.REG, Mode.IND):
            return Operand(mode, reg=register)
        return Operand(mode, reg=register if mode is Mode.IDX else 0, value=value)

    return st.builds(
        build,
        st.sampled_from(modes),
        st.integers(0, NUM_REGISTERS - 1),
        st.integers(0, 0xFFFF),
    )


def _instruction_strategy():
    def build(op, src, dst):
        has_src, has_dst = OPERAND_SHAPE[op]
        if has_dst and dst.mode is Mode.IMM and op is not Op.OUT:
            dst = Operand(Mode.REG, reg=dst.reg if dst.reg < 16 else 0)
        return Instruction(
            op,
            src=src if has_src else Operand(Mode.NONE),
            dst=dst if has_dst else Operand(Mode.NONE),
        )

    return st.builds(
        build,
        st.sampled_from(list(Op)),
        _operand_strategy(),
        _operand_strategy(),
    )


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        ins = Instruction(Op.MOV, src=imm(0x1234), dst=absolute(0x4400))
        decoded, size = _decode_words(ins.encode())
        assert decoded == ins
        assert size == ins.size_bytes

    def test_all_opcode_values_distinct(self):
        values = [int(op) for op in Op]
        assert len(values) == len(set(values))

    def test_invalid_opcode_raises(self):
        with pytest.raises(DecodeError):
            _decode_words([0xFF00, 0x0000])

    def test_invalid_mode_raises(self):
        # opcode MOV with src mode 0xF (undefined)
        with pytest.raises(DecodeError):
            _decode_words([(0x01 << 8) | 0xF1, 0x0000])

    def test_register_out_of_range_raises(self):
        ins = Instruction(Op.MOV, src=reg(1), dst=reg(2))
        words = ins.encode()
        words[1] = 0xFF00 | (words[1] & 0xFF)  # src reg 255
        with pytest.raises(DecodeError):
            _decode_words(words)

    @given(_instruction_strategy())
    def test_roundtrip_property(self, ins):
        """Every well-formed instruction encodes and decodes identically."""
        decoded, size = _decode_words(ins.encode())
        assert decoded == ins
        assert size == 2 * len(ins.encode())
