"""Differential ISA conformance for the block translation cache.

Every test here runs the same assembled program twice on freshly built,
identically seeded simulators — once dispatching through translated
basic blocks (the production path) and once forced to single-step — and
requires the two executions to be *bit-identical*: register file,
Fletcher-16 checksums of every memory region, retired-instruction
counts, reboot boundaries, simulated clock, capacitor voltage, and
energy accounting.  Programs are randomly generated from seeds
(straight-line and branchy shapes), plus directed cases for the two
hardest invalidation/deoptimization scenarios: self-modifying
FRAM-resident code and brown-outs landing mid-block under an
intermittent supply.

What is deliberately *not* compared: per-region read counters.  Block
translation decodes ahead of execution (and revival fingerprints reread
code bytes), so instrumentation-level read counts legitimately differ
while every architecturally visible bit stays equal.
"""

from __future__ import annotations

import random

import pytest

from repro import RunStatus, Simulator, TargetDevice, make_wisp_power_system
from repro.mcu.assembler import assemble
from repro.runtime.isa_executor import IsaIntermittentExecutor

pytestmark = pytest.mark.blockcache


def fletcher16(data: bytes) -> int:
    """Fletcher-16 checksum (the classic mod-255 formulation)."""
    s1 = s2 = 0
    for byte in data:
        s1 = (s1 + byte) % 255
        s2 = (s2 + s1) % 255
    return (s2 << 8) | s1


def _execute(source, *, block_mode, seed=1234, duration=1.5,
             distance=1.6, fading_sigma=0.0):
    """Assemble and run ``source`` intermittently; return (result, device, sim)."""
    sim = Simulator(seed=seed)
    power = make_wisp_power_system(
        sim, distance_m=distance, fading_sigma=fading_sigma
    )
    device = TargetDevice(sim, power)
    device.cpu.block_cache_enabled = block_mode
    executor = IsaIntermittentExecutor(sim, device, assemble(source))
    result = executor.run(duration=duration)
    return result, device, sim


def _observable_state(result, device, sim):
    """Everything the ISSUE's bit-identity contract covers, as one dict."""
    return {
        "status": result.status,
        "boots": result.boots,
        "reboots": result.reboots,
        "faults": result.faults,
        "first_fault_time": result.first_fault_time,
        "registers": tuple(device.cpu.registers),
        "retired": device.cpu.instructions_retired,
        # Region bytes read directly, not through the map accessors, so
        # the checksum itself cannot perturb read/write counters.
        "memory": {
            region.name: fletcher16(bytes(region._data))
            for region in device.memory.regions
        },
        "now": sim.now,
        "vcap": device.power.vcap,
        "energy": device.energy_consumed,
    }


def _assert_differential(source, **kwargs):
    """Run both modes and require bit-identical observable state."""
    blocked = _execute(source, block_mode=True, **kwargs)
    stepped = _execute(source, block_mode=False, **kwargs)
    assert _observable_state(*blocked) == _observable_state(*stepped)
    return blocked, stepped


# -- random program generation ---------------------------------------------

_REGS = [f"r{i}" for i in range(4, 13)]
_TWO_OP = ["mov", "add", "sub", "and", "or", "xor", "cmp", "bit"]
_ONE_OP = ["inc", "dec", "shl", "shr", "swpb", "inv"]


def _random_straightline(rng: random.Random, length: int) -> str:
    """A linear program over registers, immediates, and FRAM words."""
    data = [f"d{i}:     .word {rng.randrange(0x10000)}" for i in range(4)]
    body = []
    for _ in range(length):
        shape = rng.randrange(6)
        if shape == 0:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"#{rng.randrange(0x10000)}, {rng.choice(_REGS)}"
            )
        elif shape == 1:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"{rng.choice(_REGS)}, {rng.choice(_REGS)}"
            )
        elif shape == 2:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"&d{rng.randrange(4)}, {rng.choice(_REGS)}"
            )
        elif shape == 3:
            body.append(
                f"        mov {rng.choice(_REGS)}, &d{rng.randrange(4)}"
            )
        elif shape == 4:
            body.append(f"        {rng.choice(_ONE_OP)} {rng.choice(_REGS)}")
        else:
            reg = rng.choice(_REGS)
            body.append(f"        push {reg}")
            body.append(f"        pop {rng.choice(_REGS)}")
    lines = ["        .org 0xA000", *data, "start:  nop", *body, "        halt"]
    return "\n".join(lines)


def _random_branchy(rng: random.Random, iterations: int) -> str:
    """A counted loop with a flag-dependent branch inside each pass."""
    taken = rng.choice(["jz", "jnz", "jc", "jn"])
    op_a = rng.choice(_TWO_OP)
    op_b = rng.choice(_ONE_OP)
    return f"""
        .org 0xA000
acc:    .word 0
out:    .word 0
start:  mov &acc, r4
        mov #{rng.randrange(1, 0x4000)}, r6
loop:   {op_a} #{rng.randrange(0x10000)}, r6
        {op_b} r6
        shr r6
        {taken} skip
        add #{rng.randrange(1, 9)}, r7
        xor r6, r7
skip:   add r7, r5
        inc r4
        mov r4, &acc
        cmp #{iterations}, r4
        jnz loop
        mov r5, &out
        halt
"""


@pytest.mark.parametrize("seed", [1, 7, 23, 101, 4099])
def test_random_straightline_differential(seed):
    rng = random.Random(seed)
    source = _random_straightline(rng, length=rng.randrange(20, 60))
    (blocked_result, blocked_device, _), _ = _assert_differential(
        source, seed=1000 + seed
    )
    assert blocked_result.status is RunStatus.COMPLETED
    # The fast path genuinely engaged: translation and block dispatch
    # both happened (the differential would pass vacuously otherwise).
    assert blocked_device.cpu.blocks_translated > 0
    assert blocked_device.cpu.blocks_executed > 0


@pytest.mark.parametrize("seed", [2, 11, 31, 127, 8191])
def test_random_branchy_differential(seed):
    rng = random.Random(seed)
    source = _random_branchy(rng, iterations=rng.randrange(40, 160))
    (blocked_result, blocked_device, _), (stepped_result, stepped_device, _) = (
        _assert_differential(source, seed=2000 + seed, duration=2.5)
    )
    assert blocked_device.cpu.blocks_executed > 0
    # Single-step mode must never have touched the translator.
    assert stepped_device.cpu.blocks_translated == 0
    assert stepped_device.cpu.blocks_executed == 0


def test_mid_block_brownout_differential():
    """A weak, fading supply browns out constantly; blocks must deopt
    (or unwind) onto the exact instruction boundary single-stepping
    lands on, reboot for reboot."""
    rng = random.Random(5)
    source = _random_branchy(rng, iterations=6000)
    (blocked_result, blocked_device, _), _ = _assert_differential(
        source, seed=77, duration=1.0, distance=2.4, fading_sigma=1.5
    )
    # The scenario is only meaningful if power actually failed mid-run
    # and the near-brown-out guard forced deoptimizations.
    assert blocked_result.reboots > 0
    assert blocked_device.cpu.blocks_deopts > 0


SELF_MODIFYING_SOURCE = """
; FRAM-resident code that rewrites its own immediate operand.
; 0xA000: mov #7, r4 encodes as opcode word, register word, then the
; immediate extension word at 0xA004.  The store to &0xA004 must
; invalidate the translated block so the second pass of the loop
; executes the patched instruction.
        .org 0xA000
start:  mov #7, r4
        mov #99, &0xA004
        inc r5
        cmp #2, r5
        jnz start
        halt
"""


def test_self_modifying_code_differential():
    (blocked_result, blocked_device, _), _ = _assert_differential(
        SELF_MODIFYING_SOURCE, seed=31
    )
    assert blocked_result.status is RunStatus.COMPLETED
    # The patch took effect on the second pass in *both* modes: stale
    # translations would have left r4 at the original immediate.
    assert blocked_device.cpu.registers[4] == 99


def test_forced_single_step_leaves_counters_dark():
    """block_cache_enabled=False is a true kill switch: no translation,
    no block dispatch, no deopt accounting."""
    _, device, _ = _execute(
        _random_straightline(random.Random(3), 25), block_mode=False, seed=3
    )
    cpu = device.cpu
    assert (cpu.blocks_translated, cpu.blocks_executed, cpu.blocks_deopts) == (
        0,
        0,
        0,
    )
