"""Differential ISA conformance for the block and superblock tiers.

Every test here runs the same assembled program on freshly built,
identically seeded simulators under each execution tier — single-step,
translated basic blocks, and profile-guided superblock traces with the
closed-form energy fast-forward — and requires the executions to be
*bit-identical*: register file, Fletcher-16 checksums of every memory
region, retired-instruction counts, reboot boundaries, simulated clock,
capacitor voltage, and energy accounting.  Programs are randomly
generated from seeds (straight-line and branchy shapes), optionally
under randomized brown-out schedules, plus directed cases for the
hardest invalidation/deoptimization scenarios: self-modifying
FRAM-resident code, brown-outs landing mid-block under an intermittent
supply, and forced deoptimization of every guard.

What is deliberately *not* compared: per-region read counters.  Block
translation decodes ahead of execution (and revival fingerprints reread
code bytes), so instrumentation-level read counts legitimately differ
while every architecturally visible bit stays equal.
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro import RunStatus, Simulator, TargetDevice, make_wisp_power_system
from repro.campaign.faults import ScheduledBrownouts
from repro.mcu.assembler import assemble
from repro.power.capacitor import StorageCapacitor, closed_form_step
from repro.runtime.isa_executor import IsaIntermittentExecutor
from repro.testing import make_bench_target

pytestmark = pytest.mark.blockcache

#: The three dispatch tiers, fastest first (see docs/PERF.md).
MODES = ("trace", "block", "step")

# The differential (bit-identity) assertions run under *every* tier
# environment — that is the point of the suite — but the non-vacuity
# assertions ("the tier under test really engaged") only hold when the
# environment has not disabled that tier.
_BLOCKCACHE_ON = os.environ.get("REPRO_NO_BLOCKCACHE", "") in ("", "0")
_SUPERBLOCK_ON = _BLOCKCACHE_ON and (
    os.environ.get("REPRO_NO_SUPERBLOCK", "") in ("", "0")
)
_DEOPT_FORCED = os.environ.get("REPRO_FORCE_DEOPT", "") not in ("", "0")
_BLOCKS_ENGAGE = _BLOCKCACHE_ON and not _DEOPT_FORCED
_TRACES_ENGAGE = _SUPERBLOCK_ON and not _DEOPT_FORCED

needs_guards = pytest.mark.skipif(
    not _BLOCKS_ENGAGE,
    reason="block guards disabled by REPRO_NO_BLOCKCACHE/REPRO_FORCE_DEOPT",
)
needs_traces = pytest.mark.skipif(
    not _TRACES_ENGAGE,
    reason="trace tier disabled by environment",
)


def fletcher16(data: bytes) -> int:
    """Fletcher-16 checksum (the classic mod-255 formulation)."""
    s1 = s2 = 0
    for byte in data:
        s1 = (s1 + byte) % 255
        s2 = (s2 + s1) % 255
    return (s2 << 8) | s1


def _execute(source, *, mode="trace", seed=1234, duration=1.5,
             distance=1.6, fading_sigma=0.0, schedule=None, bench=False):
    """Assemble and run ``source`` intermittently under one dispatch tier.

    ``mode`` picks the tier: ``"step"`` single-steps every instruction,
    ``"block"`` dispatches translated blocks with the trace tier off,
    and ``"trace"`` is the full production path (superblock traces plus
    the closed-form fast-forward).  ``schedule`` optionally installs a
    :class:`ScheduledBrownouts` injector (ops per boot); ``bench``
    swaps the fading RF supply for the bench supply that never browns
    out organically, so the schedule is the only fault source.
    Returns ``(result, device, sim)``.
    """
    sim = Simulator(seed=seed)
    if bench:
        device = make_bench_target(sim)
    else:
        power = make_wisp_power_system(
            sim, distance_m=distance, fading_sigma=fading_sigma
        )
        device = TargetDevice(sim, power)
    if mode == "step":
        device.cpu.block_cache_enabled = False
    elif mode == "block":
        device.cpu.trace_tier_enabled = False
    elif mode != "trace":
        raise ValueError(f"unknown mode {mode!r}")
    injector = (
        ScheduledBrownouts(device, list(schedule)) if schedule else None
    )
    executor = IsaIntermittentExecutor(sim, device, assemble(source))
    result = executor.run(duration=duration)
    if injector is not None:
        injector.remove()
    return result, device, sim


def _observable_state(result, device, sim):
    """Everything the ISSUE's bit-identity contract covers, as one dict."""
    return {
        "status": result.status,
        "boots": result.boots,
        "reboots": result.reboots,
        "faults": result.faults,
        "first_fault_time": result.first_fault_time,
        "registers": tuple(device.cpu.registers),
        "retired": device.cpu.instructions_retired,
        # Region bytes read directly, not through the map accessors, so
        # the checksum itself cannot perturb read/write counters.
        "memory": {
            region.name: fletcher16(bytes(region._data))
            for region in device.memory.regions
        },
        "now": sim.now,
        "vcap": device.power.vcap,
        "energy": device.energy_consumed,
    }


def _assert_differential(source, **kwargs):
    """Run all three tiers and require bit-identical observable state.

    Returns ``{mode: (result, device, sim)}`` so callers can make the
    differential non-vacuous (assert the tier under test actually
    engaged).
    """
    runs = {mode: _execute(source, mode=mode, **kwargs) for mode in MODES}
    states = {mode: _observable_state(*run) for mode, run in runs.items()}
    assert states["trace"] == states["step"], "trace tier diverged"
    assert states["block"] == states["step"], "block tier diverged"
    return runs


# -- random program generation ---------------------------------------------

_REGS = [f"r{i}" for i in range(4, 13)]
_TWO_OP = ["mov", "add", "sub", "and", "or", "xor", "cmp", "bit"]
_ONE_OP = ["inc", "dec", "shl", "shr", "swpb", "inv"]


def _random_straightline(rng: random.Random, length: int) -> str:
    """A linear program over registers, immediates, and FRAM words."""
    data = [f"d{i}:     .word {rng.randrange(0x10000)}" for i in range(4)]
    body = []
    for _ in range(length):
        shape = rng.randrange(6)
        if shape == 0:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"#{rng.randrange(0x10000)}, {rng.choice(_REGS)}"
            )
        elif shape == 1:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"{rng.choice(_REGS)}, {rng.choice(_REGS)}"
            )
        elif shape == 2:
            body.append(
                f"        {rng.choice(_TWO_OP)} "
                f"&d{rng.randrange(4)}, {rng.choice(_REGS)}"
            )
        elif shape == 3:
            body.append(
                f"        mov {rng.choice(_REGS)}, &d{rng.randrange(4)}"
            )
        elif shape == 4:
            body.append(f"        {rng.choice(_ONE_OP)} {rng.choice(_REGS)}")
        else:
            reg = rng.choice(_REGS)
            body.append(f"        push {reg}")
            body.append(f"        pop {rng.choice(_REGS)}")
    lines = ["        .org 0xA000", *data, "start:  nop", *body, "        halt"]
    return "\n".join(lines)


def _random_branchy(rng: random.Random, iterations: int) -> str:
    """A counted loop with a flag-dependent branch inside each pass."""
    taken = rng.choice(["jz", "jnz", "jc", "jn"])
    op_a = rng.choice(_TWO_OP)
    op_b = rng.choice(_ONE_OP)
    return f"""
        .org 0xA000
acc:    .word 0
out:    .word 0
start:  mov &acc, r4
        mov #{rng.randrange(1, 0x4000)}, r6
loop:   {op_a} #{rng.randrange(0x10000)}, r6
        {op_b} r6
        shr r6
        {taken} skip
        add #{rng.randrange(1, 9)}, r7
        xor r6, r7
skip:   add r7, r5
        inc r4
        mov r4, &acc
        cmp #{iterations}, r4
        jnz loop
        mov r5, &out
        halt
"""


@pytest.mark.parametrize("seed", [1, 7, 23, 101, 4099])
def test_random_straightline_differential(seed):
    rng = random.Random(seed)
    source = _random_straightline(rng, length=rng.randrange(20, 60))
    runs = _assert_differential(source, seed=1000 + seed)
    blocked_result, blocked_device, _ = runs["block"]
    assert blocked_result.status is RunStatus.COMPLETED
    # The fast path genuinely engaged: translation and block dispatch
    # both happened (the differential would pass vacuously otherwise).
    if _BLOCKS_ENGAGE:
        assert blocked_device.cpu.blocks_translated > 0
        assert blocked_device.cpu.blocks_executed > 0


@pytest.mark.parametrize("seed", [2, 11, 31, 127, 8191])
def test_random_branchy_differential(seed):
    rng = random.Random(seed)
    source = _random_branchy(rng, iterations=rng.randrange(40, 160))
    runs = _assert_differential(source, seed=2000 + seed, duration=2.5)
    _, blocked_device, _ = runs["block"]
    _, stepped_device, _ = runs["step"]
    if _BLOCKS_ENGAGE:
        assert blocked_device.cpu.blocks_executed > 0
    # The block-only tier must never have formed a trace, and
    # single-step mode must never have touched the translator.
    assert blocked_device.cpu.traces_formed == 0
    assert blocked_device.cpu.traces_executed == 0
    assert stepped_device.cpu.blocks_translated == 0
    assert stepped_device.cpu.blocks_executed == 0


def test_mid_block_brownout_differential():
    """A weak, fading supply browns out constantly; blocks must deopt
    (or unwind) onto the exact instruction boundary single-stepping
    lands on, reboot for reboot."""
    rng = random.Random(5)
    source = _random_branchy(rng, iterations=6000)
    runs = _assert_differential(
        source, seed=77, duration=1.0, distance=2.4, fading_sigma=1.5
    )
    blocked_result, blocked_device, _ = runs["block"]
    # The scenario is only meaningful if power actually failed mid-run
    # and the near-brown-out guard forced deoptimizations.
    assert blocked_result.reboots > 0
    if _BLOCKCACHE_ON:
        assert blocked_device.cpu.blocks_deopts > 0
    # The full production tier additionally ran traces and fast-forward
    # spans through the same brown-outs without drifting a bit.
    if _TRACES_ENGAGE:
        traced_device = runs["trace"][1]
        assert traced_device.cpu.traces_executed > 0
        assert traced_device.ff_spans > 0
        assert traced_device.ff_spends > 0


SELF_MODIFYING_SOURCE = """
; FRAM-resident code that rewrites its own immediate operand.
; 0xA000: mov #7, r4 encodes as opcode word, register word, then the
; immediate extension word at 0xA004.  The store to &0xA004 must
; invalidate the translated block so the second pass of the loop
; executes the patched instruction.
        .org 0xA000
start:  mov #7, r4
        mov #99, &0xA004
        inc r5
        cmp #2, r5
        jnz start
        halt
"""


def test_self_modifying_code_differential():
    runs = _assert_differential(SELF_MODIFYING_SOURCE, seed=31)
    blocked_result, blocked_device, _ = runs["block"]
    assert blocked_result.status is RunStatus.COMPLETED
    # The patch took effect on the second pass in *all* modes: stale
    # translations would have left r4 at the original immediate.
    assert blocked_device.cpu.registers[4] == 99


def test_forced_single_step_leaves_counters_dark():
    """block_cache_enabled=False is a true kill switch: no translation,
    no block dispatch, no deopt accounting, no traces, no spans."""
    _, device, _ = _execute(
        _random_straightline(random.Random(3), 25), mode="step", seed=3
    )
    cpu = device.cpu
    assert (cpu.blocks_translated, cpu.blocks_executed, cpu.blocks_deopts) == (
        0,
        0,
        0,
    )
    assert (cpu.traces_formed, cpu.traces_executed, cpu.trace_exits) == (
        0,
        0,
        0,
    )
    assert (device.ff_spans, device.ff_spends) == (0, 0)


# -- random fault schedules across all three tiers --------------------------


@pytest.mark.parametrize("seed", [3, 17, 59])
def test_random_faulted_schedule_differential(seed):
    """Random program + random brown-out schedule, three-way identical.

    The bench supply never browns out organically, so the injected
    schedule is the only fault source — every reboot boundary, register,
    memory word, clock tick, and capacitor bit must agree across
    single-step, block, and trace dispatch.  The injector's post-work
    hook keeps traces on the per-spend path (mode 1), which is exactly
    the configuration campaign legs run in.
    """
    rng = random.Random(seed)
    source = _random_branchy(rng, iterations=rng.randrange(200, 400))
    schedule = [rng.randrange(40, 400) for _ in range(rng.randrange(2, 8))]
    runs = _assert_differential(
        source, seed=4000 + seed, duration=0.5, bench=True, schedule=schedule
    )
    traced_result, traced_device, _ = runs["trace"]
    # Faults really fired and the trace tier really served the run.
    assert traced_result.reboots > 0
    if _TRACES_ENGAGE:
        assert traced_device.cpu.traces_formed > 0
        assert traced_device.cpu.traces_executed > 0
    # The injector hook must have pinned admissions to the per-spend
    # path: a fast-forward span would have hidden spends from it.
    assert traced_device.ff_spans == 0


@pytest.mark.parametrize("seed", [13, 43])
def test_random_faulted_organic_differential(seed):
    """Random schedule *plus* organic fading brown-outs, three-way."""
    rng = random.Random(seed)
    source = _random_branchy(rng, iterations=5000)
    schedule = [rng.randrange(30, 200) for _ in range(rng.randrange(1, 5))]
    runs = _assert_differential(
        source, seed=5000 + seed, duration=0.8, distance=2.2,
        fading_sigma=1.5, schedule=schedule,
    )
    traced_result, traced_device, _ = runs["trace"]
    assert traced_result.reboots > 0
    if _BLOCKS_ENGAGE:
        assert traced_device.cpu.blocks_executed > 0


# -- directed guard edge cases (src/repro/mcu/device.py block_guard) --------


HOT_LOOP_SOURCE = """
        .org 0xA000
start:  mov #0, r4
outer:  mov #30000, r5
loop:   add #3, r4
        dec r5
        jnz loop
        jmp outer
"""


def _warm_bench_device(seed=7, leakage_resistance=None, steps=200):
    """A bench-supplied device with a live spend window and hot blocks."""
    sim = Simulator(seed=seed)
    device = make_bench_target(sim)
    if leakage_resistance is not None:
        device.power.capacitor.leakage_resistance = leakage_resistance
        device.invalidate_energy_window()
    device.load_program(assemble(HOT_LOOP_SOURCE))
    for _ in range(steps):
        device.cpu.step_block()
    assert device._spend_window is not None
    return sim, device


def _first_refusal(device, lo=1, hi=1 << 24):
    """Bisect the smallest worst_cycles block_guard refuses."""
    assert device.block_guard(lo)
    assert not device.block_guard(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if device.block_guard(mid):
            lo = mid
        else:
            hi = mid
    return hi


@needs_guards
def test_block_guard_refuses_earlier_with_leakage():
    """The droop bound must include the leakage term when present.

    Identical setups except for the capacitor's self-discharge path:
    the leaky device's worst-case droop crosses the comparator floor at
    a strictly smaller cycle span, and at exactly that span the
    leak-free device still admits the block — so the refusal is
    attributable to the leakage term, not the base net-load droop.
    """
    _, clean = _warm_bench_device(leakage_resistance=None)
    _, leaky = _warm_bench_device(leakage_resistance=2e5)
    assert leaky._spend_window.leak_tau is not None
    assert clean._spend_window.leak_tau is None
    clean_refusal = _first_refusal(clean)
    leaky_refusal = _first_refusal(leaky)
    assert leaky_refusal < clean_refusal
    assert clean.block_guard(leaky_refusal)


@needs_guards
def test_block_guard_stop_after_exactly_on_boundary():
    """A deadline landing exactly on the block's end must force deopt.

    The guard computes ``t1 = now + worst_cycles * cycle_time`` with
    the same expression used here, so the comparison is exact: a span
    ending *at* the deadline is refused (``t1 >= stop``), one cycle of
    headroom re-admits it.
    """
    sim, device = _warm_bench_device()
    cycles = 100
    assert device.block_guard(cycles)
    boundary = sim._now + cycles * device._cycle_time
    # Set the private field: the public setter deliberately drops the
    # spend window (deadline changes are executor run boundaries), and
    # this test needs the window live to isolate the deadline check.
    device._stop_after = boundary
    assert not device.block_guard(cycles)
    device._stop_after = sim._now + (cycles + 1) * device._cycle_time
    assert device.block_guard(cycles)
    device._stop_after = None


@needs_guards
def test_block_guard_event_one_cycle_inside_span():
    """A queued sim event inside the span must force deopt."""
    sim, device = _warm_bench_device()
    cycles = 1000
    assert device.block_guard(cycles)
    # One cycle *inside* the span: due strictly before the block ends.
    event_time = sim._now + (cycles - 1) * device._cycle_time
    sim.call_at(event_time, lambda: None)
    assert not device.block_guard(cycles)
    # A span that completes before the event is due stays admitted
    # (three cycles of headroom so float rounding cannot flip it).
    assert device.block_guard(cycles - 4)


@needs_traces
def test_trace_guard_modes():
    """trace_guard: 0 = refuse, 1 = per-spend path, 2 = span open."""
    _, device = _warm_bench_device()
    # No hooks, plenty of energy: a span opens and is accounted.
    spans_before = device.ff_spans
    assert device.trace_guard(500) == 2
    assert device._span_cycles == 500
    assert device.ff_spans == spans_before + 1
    # A nested admission while a span is open stays per-spend.
    assert device.trace_guard(100) == 1
    device._span_end()
    assert device._span_cycles == 0
    # Post-work hooks must observe every spend: per-spend path.
    device.post_work_hooks.append(lambda: None)
    assert device.trace_guard(500) == 1
    device.post_work_hooks.clear()
    # A refused block guard refuses the trace outright.
    assert device.trace_guard(1 << 24) == 0


def test_forced_deopt_differential():
    """force_deopt defeats every guard yet changes no observable bit."""
    source = _random_branchy(random.Random(9), iterations=2500)

    def run(force):
        sim = Simulator(seed=66)
        power = make_wisp_power_system(sim, distance_m=2.0, fading_sigma=1.0)
        device = TargetDevice(sim, power)
        device.force_deopt = force
        executor = IsaIntermittentExecutor(sim, device, assemble(source))
        result = executor.run(duration=0.8)
        return result, device, sim

    forced = run(True)
    normal = run(False)
    assert _observable_state(*forced) == _observable_state(*normal)
    forced_device = forced[1]
    # Every block admission was refused: translation still happens (and
    # is charged as a deopt), but no trace ever runs and no span opens.
    if _BLOCKCACHE_ON:
        assert forced_device.cpu.blocks_deopts > 0
    assert forced_device.cpu.traces_executed == 0
    assert forced_device.ff_spans == 0
    # The unforced run really used the fast tiers, so the comparison
    # is not vacuous.
    if _BLOCKS_ENGAGE:
        assert normal[1].cpu.blocks_executed > 0


@pytest.mark.skipif(
    not _BLOCKCACHE_ON, reason="block cache disabled by environment"
)
def test_superblock_kill_switch_env(monkeypatch):
    """REPRO_NO_SUPERBLOCK=1 disables only the trace tier."""
    monkeypatch.setenv("REPRO_NO_SUPERBLOCK", "1")
    sim = Simulator(seed=1)
    device = make_bench_target(sim)
    assert device.cpu.block_cache_enabled
    assert not device.cpu.trace_tier_enabled


def test_force_deopt_env(monkeypatch):
    """REPRO_FORCE_DEOPT=1 arms force_deopt at construction."""
    monkeypatch.setenv("REPRO_FORCE_DEOPT", "1")
    sim = Simulator(seed=1)
    device = make_bench_target(sim)
    assert device.force_deopt
    assert not device.block_guard(1)


# -- closed-form step: the pinned reference arithmetic ----------------------


@pytest.mark.skipif(
    not _BLOCKCACHE_ON, reason="spend window disabled by environment"
)
def test_closed_form_step_matches_device_fast_path():
    """One spend through execute_cycles lands exactly on the closed form.

    The device's fast path inlines :func:`closed_form_step`'s
    arithmetic from memoized constants; this pins the two against each
    other bit for bit, charge branch and leakage factor included.
    """
    for leak in (None, 2e5):
        _, device = _warm_bench_device(leakage_resistance=leak)
        fw = device._spend_window
        cycles = 137
        dt = cycles * device._cycle_time
        exp_charge = math.exp(-dt / fw.tau)
        leak_factor = (
            math.exp(-dt / fw.leak_tau) if fw.leak_tau is not None else None
        )
        v0 = device.power.capacitor._voltage
        expected = closed_form_step(
            v0, dt, fw.voc, fw.v_inf, exp_charge, fw.net,
            fw.cap, fw.vmax, leak_factor,
        )
        device.execute_cycles(cycles)
        assert device.power.capacitor._voltage == expected


@needs_traces
def test_closed_form_step_matches_span_fast_forward():
    """The open-span branch commits the identical closed-form voltage."""
    sim, device = _warm_bench_device()
    fw = device._spend_window
    cycles = 64
    assert device.trace_guard(cycles) == 2
    dt = cycles * device._cycle_time
    expected = closed_form_step(
        device.power.capacitor._voltage, dt, fw.voc, fw.v_inf,
        math.exp(-dt / fw.tau), fw.net, fw.cap, fw.vmax, None,
    )
    spends_before = device.ff_spends
    now_before = sim._now
    device.execute_cycles(cycles)
    assert device.power.capacitor._voltage == expected
    assert device.ff_spends == spends_before + 1
    assert device._span_cycles == 0  # the span was consumed exactly
    assert sim._now == now_before + dt
    device._span_end()


def test_closed_form_advance_matches_reference():
    """StorageCapacitor.closed_form_advance == closed_form_step."""
    cap = StorageCapacitor(
        47e-6, voltage=2.0, max_voltage=3.3, leakage_resistance=1e6
    )
    dt, voc, rs, net = 1e-3, 3.3, 660.0, 1.2e-3
    expected = closed_form_step(
        2.0, dt, voc, voc - net * rs, math.exp(-dt / (rs * 47e-6)),
        net, 47e-6, 3.3, math.exp(-dt / (1e6 * 47e-6)),
    )
    assert cap.closed_form_advance(dt, voc, rs, net) == expected
    assert cap.voltage == expected
