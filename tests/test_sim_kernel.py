"""Unit tests for the simulation kernel: clock, events, traces, RNG."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advance_moves_time(self):
        sim = Simulator()
        sim.advance(0.5)
        assert sim.now == pytest.approx(0.5)

    def test_advance_accumulates(self):
        sim = Simulator()
        for _ in range(10):
            sim.advance(0.1)
        assert sim.now == pytest.approx(1.0)

    def test_negative_advance_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.advance(-0.1)

    def test_run_until_absolute(self):
        sim = Simulator()
        sim.run_until(2.0)
        assert sim.now == pytest.approx(2.0)

    def test_run_until_past_time_is_noop(self):
        sim = Simulator()
        sim.advance(1.0)
        sim.run_until(0.5)
        assert sim.now == pytest.approx(1.0)


class TestEvents:
    def test_call_at_fires_during_sweep(self):
        sim = Simulator()
        fired = []
        sim.call_at(0.5, lambda: fired.append(sim.now))
        sim.advance(1.0)
        assert fired == [pytest.approx(0.5)]

    def test_event_does_not_fire_early(self):
        sim = Simulator()
        fired = []
        sim.call_at(0.5, lambda: fired.append(True))
        sim.advance(0.4)
        assert fired == []

    def test_call_after_relative(self):
        sim = Simulator()
        sim.advance(1.0)
        fired = []
        sim.call_after(0.25, lambda: fired.append(sim.now))
        sim.advance(0.5)
        assert fired == [pytest.approx(1.25)]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.advance(1.0)
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_at(0.3, lambda: order.append("b"))
        sim.call_at(0.1, lambda: order.append("a"))
        sim.call_at(0.7, lambda: order.append("c"))
        sim.advance(1.0)
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        sim.call_at(0.5, lambda: order.append(1))
        sim.call_at(0.5, lambda: order.append(2))
        sim.advance(1.0)
        assert order == [1, 2]

    def test_periodic_event_recurs(self):
        sim = Simulator()
        hits = []
        sim.call_every(0.1, lambda: hits.append(round(sim.now, 6)))
        sim.advance(0.55)
        assert len(hits) == 5

    def test_periodic_with_explicit_start(self):
        sim = Simulator()
        hits = []
        sim.call_every(0.1, lambda: hits.append(sim.now), start=0.0)
        sim.advance(0.35)
        assert len(hits) == 4  # 0.0, 0.1, 0.2, 0.3

    def test_cancel_stops_event(self):
        sim = Simulator()
        hits = []
        event = sim.call_every(0.1, lambda: hits.append(True))
        sim.advance(0.25)
        event.cancel()
        sim.advance(1.0)
        assert len(hits) == 2

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_every(0.0, lambda: None)

    def test_event_scheduled_during_sweep_fires_if_due(self):
        sim = Simulator()
        fired = []
        sim.call_at(0.2, lambda: sim.call_at(0.3, lambda: fired.append(True)))
        sim.advance(1.0)
        assert fired == [True]

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        event = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1

    def test_clock_matches_event_time_inside_callback(self):
        sim = Simulator()
        seen = []
        sim.call_at(0.42, lambda: seen.append(sim.now))
        sim.advance(1.0)
        assert seen == [pytest.approx(0.42)]


class TestTraceRecorder:
    def _recorder(self):
        clock = [0.0]
        rec = TraceRecorder(clock=lambda: clock[0])
        return rec, clock

    def test_record_and_read_back(self):
        rec, clock = self._recorder()
        rec.record("chan", 1)
        clock[0] = 1.0
        rec.record("chan", 2)
        assert rec.values("chan") == [1, 2]

    def test_series_returns_parallel_lists(self):
        rec, clock = self._recorder()
        rec.record("v", 2.4)
        clock[0] = 0.5
        rec.record("v", 1.8)
        times, values = rec.series("v")
        assert times == [0.0, 0.5]
        assert values == [2.4, 1.8]

    def test_channels_sorted(self):
        rec, _ = self._recorder()
        rec.record("b", 1)
        rec.record("a", 1)
        assert rec.channels() == ["a", "b"]

    def test_window_half_open(self):
        rec, clock = self._recorder()
        for t in (0.0, 0.5, 1.0):
            clock[0] = t
            rec.record("x", t)
        window = rec.window("x", 0.0, 1.0)
        assert [e.value for e in window] == [0.0, 0.5]

    def test_subscribe_sees_events(self):
        rec, _ = self._recorder()
        seen = []
        rec.subscribe("x", lambda e: seen.append(e.value))
        rec.record("x", 42)
        assert seen == [42]

    def test_unsubscribe(self):
        rec, _ = self._recorder()
        seen = []
        listener = lambda e: seen.append(e.value)  # noqa: E731
        rec.subscribe("x", listener)
        rec.unsubscribe("x", listener)
        rec.record("x", 1)
        assert seen == []

    def test_merged_is_time_ordered(self):
        rec, clock = self._recorder()
        clock[0] = 1.0
        rec.record("a", "late")
        clock[0] = 0.5
        rec.record("b", "early")
        merged = list(rec.merged())
        assert [e.value for e in merged] == ["early", "late"]

    def test_disabled_recorder_still_notifies_listeners(self):
        rec, _ = self._recorder()
        rec.enabled = False
        seen = []
        rec.subscribe("x", lambda e: seen.append(e.value))
        rec.record("x", 7)
        assert seen == [7]
        assert rec.count("x") == 0

    def test_last_and_count(self):
        rec, _ = self._recorder()
        assert rec.last("x") is None
        rec.record("x", 1)
        rec.record("x", 2)
        assert rec.last("x").value == 2
        assert rec.count("x") == 2

    def test_clear_single_channel(self):
        rec, _ = self._recorder()
        rec.record("a", 1)
        rec.record("b", 1)
        rec.clear("a")
        assert rec.count("a") == 0
        assert rec.count("b") == 1


class TestRngHub:
    def test_same_seed_same_draws(self):
        a = RngHub(7).stream("x")
        b = RngHub(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        hub = RngHub(7)
        xs = [hub.stream("x").random() for _ in range(3)]
        hub2 = RngHub(7)
        _ = [hub2.stream("y").random() for _ in range(100)]
        xs2 = [hub2.stream("x").random() for _ in range(3)]
        assert xs == xs2

    def test_different_seeds_differ(self):
        assert RngHub(1).stream("x").random() != RngHub(2).stream("x").random()

    def test_chance_bounds(self):
        hub = RngHub(3)
        assert not any(hub.chance("c", 0.0) for _ in range(50))
        assert all(hub.chance("c", 1.0) for _ in range(50))

    def test_chance_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RngHub(0).chance("c", 1.5)

    def test_uniform_within_range(self):
        hub = RngHub(5)
        for _ in range(100):
            value = hub.uniform("u", -1.0, 2.0)
            assert -1.0 <= value <= 2.0
