"""Tests for the DINO-style task runtime: atomicity under power failure."""

import pytest

from repro import IntermittentExecutor, RunStatus, Simulator
from repro.mcu.device import PowerFailure
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.tasks import Task, TaskProgram, TaskRuntime
from repro.testing import BrownoutInjector, make_fast_target


def _transfer_tasks():
    """The classic atomicity workload: move 1 unit from A to B, twice
    per round (a non-atomic interleaving would lose or mint units)."""

    def debit(api, rt):
        rt.set("a", (rt.get("a") - 1) & 0xFFFF)
        api.compute(200)
        rt.set("b", (rt.get("b") + 1) & 0xFFFF)

    def audit(api, rt):
        rt.set("audits", (rt.get("audits") + 1) & 0xFFFF)
        api.compute(100)

    return [Task("debit", debit), Task("audit", audit)]


@pytest.fixture
def rig(sim, wisp):
    api = DeviceAPI(wisp)
    runtime = TaskRuntime(
        api, _transfer_tasks(), ["a", "b", "audits"], name="t"
    )
    runtime.flash_init({"a": 1000, "b": 0, "audits": 0})
    return wisp, api, runtime


class TestTaskRuntime:
    def test_tasks_round_robin(self, rig):
        _, _, runtime = rig
        assert runtime.run_one_task() == "debit"
        assert runtime.run_one_task() == "audit"
        assert runtime.run_one_task() == "debit"

    def test_committed_effects_visible(self, rig):
        _, _, runtime = rig
        runtime.run_one_task()  # debit
        assert runtime.read_committed("a") == 999
        assert runtime.read_committed("b") == 1

    def test_invariant_holds_after_each_boundary(self, rig):
        _, _, runtime = rig
        for _ in range(10):
            runtime.run_one_task()
            total = runtime.read_committed("a") + runtime.read_committed("b")
            assert total == 1000

    def test_staged_writes_invisible_until_commit(self, rig):
        _, api, runtime = rig

        observed = {}

        def peeker(api_, rt):
            rt.set("a", 7)
            observed["committed_a"] = rt.api.device.memory.read_u16(
                rt._master["a"]
            )
            observed["staged_a"] = rt.get("a")

        runtime.tasks[0] = Task("peeker", peeker)
        runtime.run_one_task()
        assert observed["committed_a"] == 1000  # master untouched mid-task
        assert observed["staged_a"] == 7  # read-your-writes
        assert runtime.read_committed("a") == 7  # committed at boundary

    def test_access_outside_task_rejected(self, rig):
        _, _, runtime = rig
        with pytest.raises(RuntimeError):
            runtime.get("a")

    def test_unknown_variable_rejected(self, rig):
        _, _, runtime = rig

        def bad(api, rt):
            rt.set("zz", 1)

        runtime.tasks[0] = Task("bad", bad)
        with pytest.raises(KeyError):
            runtime.run_one_task()

    def test_duplicate_task_names_rejected(self, sim, wisp):
        api = DeviceAPI(wisp)
        tasks = [Task("x", lambda a, r: None), Task("x", lambda a, r: None)]
        with pytest.raises(ValueError):
            TaskRuntime(api, tasks, ["v"])


class TestAtomicityUnderPowerFailure:
    def test_failure_inside_task_commits_nothing(self, rig):
        wisp, api, runtime = rig
        injector = BrownoutInjector(wisp)
        injector.arm(3)  # dies inside the debit body
        with pytest.raises(PowerFailure):
            runtime.run_one_task()
        wisp.power.capacitor.voltage = 2.4
        wisp.power.reset_comparator()
        runtime.recover()
        assert runtime.read_committed("a") == 1000  # rolled back
        assert runtime.read_committed("b") == 0
        assert runtime.current_task_index == 0  # same task runs again

    def test_failure_during_publish_is_redone(self, rig):
        """A reboot between the commit flag and the master copies must
        not lose the transaction (redo-log property)."""
        wisp, api, runtime = rig
        # Find the op count at which the commit flag has just been set:
        # probe increasing injection points until the flag reads PENDING.
        from repro.runtime.tasks import _PENDING

        for k in range(3, 120):
            wisp.power.capacitor.voltage = 2.4
            wisp.power.reset_comparator()
            runtime.flash_init({"a": 1000, "b": 0, "audits": 0})
            injector = BrownoutInjector(wisp)
            injector.arm(k)
            try:
                runtime.run_one_task()
                injector.remove()
                continue  # completed before the injection: try later point
            except PowerFailure:
                injector.remove()
            flag = wisp.memory.read_u16(runtime._commit_flag)
            if flag == _PENDING:
                break
        else:
            pytest.skip("could not land an injection inside the publish phase")
        # Recover: the committed transaction must be fully applied.
        wisp.power.capacitor.voltage = 2.4
        wisp.power.reset_comparator()
        assert runtime.recover()
        assert runtime.read_committed("a") == 999
        assert runtime.read_committed("b") == 1
        assert runtime.current_task_index == 1  # pointer advanced with it

    def test_invariant_across_many_injected_failures(self, rig):
        wisp, api, runtime = rig
        injector = BrownoutInjector(wisp)
        completed = 0
        for trial in range(60):
            wisp.power.capacitor.voltage = 2.4
            wisp.power.reset_comparator()
            injector.arm(5 + trial % 37)
            try:
                runtime.recover()
                runtime.run_one_task()
                completed += 1
            except PowerFailure:
                pass
            injector.disarm()
            wisp.power.capacitor.voltage = 2.4
            wisp.power.reset_comparator()
            runtime.recover()
            total = runtime.read_committed("a") + runtime.read_committed("b")
            assert total == 1000, f"invariant broken on trial {trial}"
        assert completed > 0


class TestTaskProgram:
    def test_runs_intermittently_to_target(self, sim):
        device = make_fast_target(sim)

        def work(api, rt):
            rt.set("count", (rt.get("count") + 1) & 0xFFFF)
            api.compute(500)

        def stop(api, rt):
            # Host-side stop predicate for the test harness.
            if rt.read_committed("count") >= 200:
                raise ProgramComplete(rt.read_committed("count"))

        program = TaskProgram(
            [Task("work", work)], ["count"], stop=stop, name="tp"
        )
        executor = IntermittentExecutor(sim, device, program)
        result = executor.run(duration=20.0)
        assert result.status is RunStatus.COMPLETED
        assert result.detail >= 200
        assert result.reboots > 0  # progress crossed power failures

    def test_exactly_once_visible_commits(self, sim):
        """Committed count equals boundaries crossed, regardless of how
        many times task bodies were re-executed after reboots."""
        device = make_fast_target(sim)
        executions = {"n": 0}

        def work(api, rt):
            executions["n"] += 1
            rt.set("count", (rt.get("count") + 1) & 0xFFFF)
            api.compute(1500)

        def stop(api, rt):
            if rt.read_committed("count") >= 100:
                raise ProgramComplete(rt.read_committed("count"))

        program = TaskProgram(
            [Task("work", work)], ["count"], stop=stop, name="eo"
        )
        executor = IntermittentExecutor(sim, device, program)
        result = executor.run(duration=30.0)
        assert result.status is RunStatus.COMPLETED
        # Bodies re-executed more often than commits landed...
        assert executions["n"] >= result.detail
        # ...but each commit incremented the counter exactly once.
        assert result.detail == program.runtime.commits
