"""Unit tests for the CPU core: opcode semantics, flags, stack, ports."""

import pytest

from repro.mcu.assembler import assemble
from repro.mcu.cpu import Cpu, CpuError, Halted
from repro.mcu.isa import FLAG_C, FLAG_N, FLAG_Z
from repro.mcu.memory import MemoryFault, SRAM_BASE, SRAM_SIZE, make_msp430_memory_map


def run_program(source, max_steps=10_000, ports_out=None, ports_in=None):
    """Assemble, load, and run until HALT; returns the CPU."""
    memory = make_msp430_memory_map()
    cpu = Cpu(memory)
    program = assemble(source)
    memory.write_bytes(program.origin, program.to_bytes())
    cpu.reset(program.entry)
    if ports_out:
        cpu.ports_out.update(ports_out)
    if ports_in:
        cpu.ports_in.update(ports_in)
    for _ in range(max_steps):
        try:
            cpu.step()
        except Halted:
            return cpu
    raise AssertionError("program did not halt")


class TestDataMovement:
    def test_mov_immediate(self):
        cpu = run_program("mov #42, r4\nhalt")
        assert cpu.registers[4] == 42

    def test_mov_register(self):
        cpu = run_program("mov #7, r4\nmov r4, r5\nhalt")
        assert cpu.registers[5] == 7

    def test_mov_absolute(self):
        cpu = run_program("v: .word 0\nstart: mov #9, &v\nmov &v, r6\nhalt")
        assert cpu.registers[6] == 9

    def test_mov_indirect(self):
        cpu = run_program(
            "v: .word 0x55\nstart: mov #v, r4\nmov @r4, r5\nhalt"
        )
        assert cpu.registers[5] == 0x55

    def test_mov_indexed(self):
        cpu = run_program(
            "arr: .word 10, 20, 30\nstart: mov #arr, r4\nmov 4(r4), r5\nhalt"
        )
        assert cpu.registers[5] == 30

    def test_negative_indexed_offset(self):
        cpu = run_program(
            "arr: .word 10, 20\nstart: mov #arr, r4\n"
            "add #2, r4\nmov -2(r4), r5\nhalt"
        )
        assert cpu.registers[5] == 10


class TestArithmetic:
    def test_add(self):
        cpu = run_program("mov #3, r4\nadd #4, r4\nhalt")
        assert cpu.registers[4] == 7

    def test_add_wraps_and_sets_carry(self):
        cpu = run_program("mov #0xFFFF, r4\nadd #1, r4\nhalt")
        assert cpu.registers[4] == 0
        assert cpu.flag(FLAG_C)
        assert cpu.flag(FLAG_Z)

    def test_sub(self):
        cpu = run_program("mov #10, r4\nsub #4, r4\nhalt")
        assert cpu.registers[4] == 6

    def test_sub_borrow_clears_carry(self):
        cpu = run_program("mov #1, r4\nsub #2, r4\nhalt")
        assert cpu.registers[4] == 0xFFFF
        assert not cpu.flag(FLAG_C)
        assert cpu.flag(FLAG_N)

    def test_cmp_sets_flags_without_writing(self):
        cpu = run_program("mov #5, r4\ncmp #5, r4\nhalt")
        assert cpu.registers[4] == 5
        assert cpu.flag(FLAG_Z)

    def test_logic_ops(self):
        cpu = run_program(
            "mov #0b1100, r4\nand #0b1010, r4\n"
            "mov #0b1100, r5\nor  #0b1010, r5\n"
            "mov #0b1100, r6\nxor #0b1010, r6\nhalt"
        )
        assert cpu.registers[4] == 0b1000
        assert cpu.registers[5] == 0b1110
        assert cpu.registers[6] == 0b0110


class TestControlFlow:
    def test_jmp(self):
        cpu = run_program("jmp skip\nmov #1, r4\nskip: halt")
        assert cpu.registers[4] == 0

    def test_jz_taken_and_not_taken(self):
        cpu = run_program(
            "mov #0, r4\ncmp #0, r4\njz yes\nmov #9, r5\nyes: halt"
        )
        assert cpu.registers[5] == 0

    def test_jnz_loop_counts(self):
        cpu = run_program(
            "mov #0, r4\nloop: add #1, r4\ncmp #5, r4\njnz loop\nhalt"
        )
        assert cpu.registers[4] == 5

    def test_jc_jnc(self):
        cpu = run_program(
            "mov #1, r4\nsub #2, r4\njnc borrowed\nmov #1, r5\n"
            "borrowed: halt"
        )
        assert cpu.registers[5] == 0

    def test_jn_on_negative(self):
        cpu = run_program(
            "mov #0, r4\nsub #1, r4\njn neg\nmov #1, r5\nneg: halt"
        )
        assert cpu.registers[5] == 0

    def test_call_and_ret(self):
        cpu = run_program(
            "start: call fn\nmov #2, r5\nhalt\nfn: mov #1, r4\nret"
        )
        assert cpu.registers[4] == 1
        assert cpu.registers[5] == 2

    def test_nested_calls(self):
        cpu = run_program(
            "start: call a\nhalt\n"
            "a: call b\nadd #1, r4\nret\n"
            "b: mov #10, r4\nret"
        )
        assert cpu.registers[4] == 11


class TestStack:
    def test_push_pop(self):
        cpu = run_program("mov #77, r4\npush r4\nmov #0, r4\npop r5\nhalt")
        assert cpu.registers[5] == 77

    def test_stack_grows_down_from_sram_top(self):
        memory = make_msp430_memory_map()
        cpu = Cpu(memory)
        program = assemble("push #1\nhalt")
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        top = cpu.sp
        cpu.step()
        assert top == SRAM_BASE + SRAM_SIZE
        assert cpu.sp == top - 2

    def test_stack_contents_cleared_on_reset(self):
        cpu = run_program("push #5\nhalt")
        cpu.reset(0xA000)
        assert cpu.registers[4:] == [0] * 12


class TestPortsAndMarkers:
    def test_out_port(self):
        written = []
        run_program(
            "mov #3, r4\nout r4, #1\nhalt", ports_out={1: written.append}
        )
        assert written == [3]

    def test_in_port(self):
        cpu = run_program("in #2, r6\nhalt", ports_in={2: lambda: 0x99})
        assert cpu.registers[6] == 0x99

    def test_unknown_port_faults(self):
        with pytest.raises(CpuError):
            run_program("out r4, #9\nhalt")

    def test_mark_invokes_hook(self):
        memory = make_msp430_memory_map()
        cpu = Cpu(memory)
        marks = []
        cpu.on_mark = marks.append
        program = assemble("mark #3\nmark #5\nhalt")
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        for _ in range(3):
            try:
                cpu.step()
            except Halted:
                break
        assert marks == [3, 5]


class TestFaults:
    def test_wild_store_raises_memory_fault(self):
        with pytest.raises(MemoryFault):
            run_program("mov #0, r4\nmov #1, @r4\nhalt")  # store to NULL

    def test_step_after_halt_raises(self):
        cpu = run_program("halt")
        with pytest.raises(Halted):
            cpu.step()

    def test_spend_called_per_instruction(self):
        memory = make_msp430_memory_map()
        spent = []
        cpu = Cpu(memory, spend=spent.append)
        program = assemble("mov #1, r4\nhalt")
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        cpu.step()
        assert sum(spent) >= 1

    def test_instructions_retired_counter(self):
        # HALT raises before being counted as retired.
        cpu = run_program("mov #1, r4\nmov #2, r5\nhalt")
        assert cpu.instructions_retired == 2
