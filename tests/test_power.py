"""Unit + property tests for the power subsystem.

Covers the capacitor, the harvester Thevenin models and the exact RC
charge step, the regulator's dropout tracking, and the hysteresis
comparator that makes operation intermittent (the Figure 2B sawtooth).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import (
    ConstantCurrentSource,
    NullSource,
    RFHarvester,
    SolarHarvester,
    TetheredSupply,
    TraceDrivenSource,
    charge_step,
)
from repro.power.regulator import LinearRegulator
from repro.power.supply import ChargingTimeout, PowerState, PowerSystem
from repro.power.wisp import WispPowerConstants, make_wisp_power_system
from repro.sim import units
from repro.sim.kernel import Simulator


class TestCapacitor:
    def test_energy_formula(self):
        cap = StorageCapacitor(47 * units.UF, voltage=2.4)
        assert cap.energy == pytest.approx(0.5 * 47e-6 * 2.4**2)

    def test_charge_formula(self):
        cap = StorageCapacitor(47 * units.UF, voltage=2.0)
        assert cap.charge == pytest.approx(47e-6 * 2.0)

    def test_voltage_clamped_at_max(self):
        cap = StorageCapacitor(1 * units.UF, voltage=1.0, max_voltage=3.0)
        cap.voltage = 10.0
        assert cap.voltage == 3.0

    def test_voltage_never_negative(self):
        cap = StorageCapacitor(1 * units.UF, voltage=0.5)
        cap.apply_current(-1.0, 1.0)  # absurd discharge
        assert cap.voltage == 0.0

    def test_add_energy_raises_voltage(self):
        cap = StorageCapacitor(47 * units.UF, voltage=1.8)
        before = cap.voltage
        cap.add_energy(10 * units.UJ)
        assert cap.voltage > before

    def test_drain_energy_returns_amount_removed(self):
        cap = StorageCapacitor(47 * units.UF, voltage=2.0)
        removed = cap.drain_energy(1 * units.UJ)
        assert removed == pytest.approx(1e-6)

    def test_drain_more_than_stored_caps_at_stored(self):
        cap = StorageCapacitor(1 * units.UF, voltage=1.0)
        stored = cap.energy
        removed = cap.drain_energy(1.0)
        assert removed == pytest.approx(stored)
        assert cap.voltage == 0.0

    def test_apply_current_integrates(self):
        cap = StorageCapacitor(47 * units.UF, voltage=2.0)
        cap.apply_current(1 * units.MA, 47 * units.MS)  # dV = I t / C = 1 V
        assert cap.voltage == pytest.approx(3.0)

    def test_leakage_decays_exponentially(self):
        cap = StorageCapacitor(
            1 * units.UF, voltage=2.0, leakage_resistance=1 * units.MOHM
        )
        cap.step_leakage(1.0)  # tau = 1 s
        assert cap.voltage == pytest.approx(2.0 * math.exp(-1), rel=1e-6)

    def test_energy_fraction_of_reference(self):
        cap = StorageCapacitor(47 * units.UF, voltage=1.2)
        assert cap.energy_fraction(2.4) == pytest.approx(0.25)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StorageCapacitor(0.0)
        with pytest.raises(ValueError):
            StorageCapacitor(1e-6, voltage=-1.0)

    @given(
        c=st.floats(1e-9, 1e-3),
        v=st.floats(0.0, 5.0),
    )
    def test_energy_voltage_roundtrip(self, c, v):
        energy = units.cap_energy(c, v)
        assert units.cap_voltage(c, energy) == pytest.approx(v, abs=1e-9)

    @given(
        v0=st.floats(0.1, 3.0),
        de=st.floats(0.0, 1e-4),
    )
    def test_add_then_drain_restores_voltage(self, v0, de):
        cap = StorageCapacitor(47 * units.UF, voltage=v0, max_voltage=100.0)
        cap.add_energy(de)
        cap.drain_energy(de)
        assert cap.voltage == pytest.approx(v0, rel=1e-9)


class TestChargeStep:
    def test_no_time_no_change(self):
        assert charge_step(2.0, 3.3, 1e3, 47e-6, 1e-3, 0.0) == 2.0

    def test_converges_to_voc_with_no_load(self):
        v = charge_step(1.0, 3.3, 1e3, 47e-6, 0.0, 10.0)  # >> tau
        assert v == pytest.approx(3.3, abs=1e-6)

    def test_converges_to_loaded_equilibrium(self):
        # V_inf = Voc - I*Rs
        v = charge_step(2.0, 3.3, 1e3, 47e-6, 1e-3, 10.0)
        assert v == pytest.approx(3.3 - 1.0, abs=1e-6)

    def test_blocked_rectifier_discharges_linearly(self):
        v = charge_step(2.0, 0.0, 1e3, 47e-6, 1e-3, 47e-3)
        assert v == pytest.approx(1.0)

    @given(
        v0=st.floats(0.0, 3.3),
        dt=st.floats(1e-6, 1.0),
    )
    @settings(max_examples=50)
    def test_charging_never_overshoots_voc(self, v0, dt):
        v = charge_step(v0, 3.3, 1e3, 47e-6, 0.0, dt)
        assert v <= 3.3 + 1e-9
        assert v >= v0 - 1e-9  # no load: monotone toward Voc

    @given(
        v0=st.floats(0.5, 3.0),
        dt1=st.floats(1e-6, 0.1),
        dt2=st.floats(1e-6, 0.1),
    )
    @settings(max_examples=50)
    def test_step_composition(self, v0, dt1, dt2):
        """Two consecutive steps equal one combined step (exact ODE)."""
        a = charge_step(v0, 3.3, 1e3, 47e-6, 0.5e-3, dt1)
        b = charge_step(a, 3.3, 1e3, 47e-6, 0.5e-3, dt2)
        combined = charge_step(v0, 3.3, 1e3, 47e-6, 0.5e-3, dt1 + dt2)
        assert b == pytest.approx(combined, rel=1e-9)


class TestHarvesters:
    def test_null_source_gives_nothing(self):
        src = NullSource()
        assert src.open_circuit_voltage(0.0) == 0.0

    def test_constant_current_thevenin(self):
        src = ConstantCurrentSource(1 * units.MA, compliance_v=3.0)
        # Short-circuit current = Voc / Rs = desired current.
        assert src.open_circuit_voltage(0) / src.source_resistance(0) == (
            pytest.approx(1e-3)
        )

    def test_rf_power_scales_inverse_square(self):
        near = RFHarvester(distance_m=1.0)
        far = RFHarvester(distance_m=2.0)
        assert near.harvested_power(0) == pytest.approx(4 * far.harvested_power(0))

    def test_rf_disabled_harvests_nothing(self):
        h = RFHarvester()
        h.enabled = False
        assert h.harvested_power(0) == 0.0
        assert h.open_circuit_voltage(0) == 0.0

    def test_rf_max_power_transfer_relation(self):
        h = RFHarvester()
        power = h.harvested_power(0)
        rs = h.source_resistance(0)
        assert h.open_voltage**2 / (4 * rs) == pytest.approx(power)

    def test_solar_scales_with_irradiance(self):
        dim = SolarHarvester(irradiance_w_m2=100)
        bright = SolarHarvester(irradiance_w_m2=300)
        assert bright.harvested_power(0) == pytest.approx(3 * dim.harvested_power(0))

    def test_trace_driven_zero_order_hold(self):
        src = TraceDrivenSource([0.0, 1.0], [3.0, 0.0], [1e3, 1e3])
        assert src.open_circuit_voltage(0.5) == 3.0
        assert src.open_circuit_voltage(1.5) == 0.0

    def test_trace_before_first_sample_holds_first(self):
        src = TraceDrivenSource([1.0], [2.5], [1e3])
        assert src.open_circuit_voltage(0.0) == 2.5

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceDrivenSource([], [], [])
        with pytest.raises(ValueError):
            TraceDrivenSource([0.0, 0.0], [1, 1], [1, 1])
        with pytest.raises(ValueError):
            TraceDrivenSource([0.0], [1], [1, 2])

    def test_tethered_supply_is_stiff(self):
        supply = TetheredSupply(voltage=3.0)
        assert supply.source_resistance(0) <= 10.0


class TestRegulator:
    def test_in_regulation(self):
        reg = LinearRegulator(nominal_output=2.0, dropout=0.1)
        assert reg.output_voltage(2.4) == pytest.approx(2.0)

    def test_dropout_tracking(self):
        """Section 4.1.2: Vreg follows Vcap down during a power failure."""
        reg = LinearRegulator(nominal_output=2.0, dropout=0.1)
        assert reg.output_voltage(1.9) == pytest.approx(1.8)
        assert reg.in_dropout(1.9)

    def test_dead_input(self):
        reg = LinearRegulator()
        assert reg.output_voltage(0.05) == 0.0

    def test_input_current_adds_quiescent(self):
        reg = LinearRegulator(quiescent_current=1e-6)
        assert reg.input_current(2.4, 1e-3) == pytest.approx(1.001e-3)

    def test_no_input_no_current(self):
        assert LinearRegulator().input_current(0.0, 1e-3) == 0.0


class TestPowerSystem:
    def _system(self, sim, voltage=1.8):
        return make_wisp_power_system(sim, initial_voltage=voltage)

    def test_starts_off_below_turn_on(self, sim):
        power = self._system(sim)
        assert power.state is PowerState.OFF

    def test_turn_on_at_threshold(self, sim):
        power = self._system(sim, voltage=2.4)
        assert power.state is PowerState.ON

    def test_hysteresis_stays_on_between_thresholds(self, sim):
        power = self._system(sim, voltage=2.4)
        power.capacitor.voltage = 2.0
        power.step(0.0)
        assert power.is_on  # above brown-out, still on

    def test_brownout_turns_off(self, sim):
        power = self._system(sim, voltage=2.4)
        power.capacitor.voltage = 1.7
        power.step(0.0)
        assert not power.is_on
        assert power.reboots == 1

    def test_no_turn_on_between_thresholds_from_off(self, sim):
        power = self._system(sim, voltage=2.0)
        assert not power.is_on  # 2.0 < 2.4 turn-on

    def test_charge_until_on_reaches_threshold(self, sim):
        power = self._system(sim)
        elapsed = power.charge_until_on()
        assert power.is_on
        assert power.vcap >= 2.4 - 1e-6
        assert elapsed > 0.0

    def test_charge_until_on_advances_sim_clock(self, sim):
        power = self._system(sim)
        power.charge_until_on()
        assert sim.now > 0.0

    def test_charging_timeout_without_source(self, sim):
        from repro.power.capacitor import StorageCapacitor
        from repro.power.harvester import NullSource

        power = PowerSystem(
            sim, NullSource(), StorageCapacitor(47 * units.UF, voltage=1.8)
        )
        with pytest.raises(ChargingTimeout):
            power.charge_until_on(timeout=0.05)

    def test_discharge_under_load(self, sim):
        power = self._system(sim, voltage=2.4)
        v0 = power.vcap
        power.step(10 * units.MS, load_current=2 * units.MA)
        assert power.vcap < v0

    def test_injected_current_charges(self, sim):
        """A debugger leaking current *into* the target charges it."""
        power = self._system(sim, voltage=2.0)
        power.source.enabled = False
        power.inject_current(10 * units.UA)
        power.step(1.0, load_current=0.0)
        assert power.vcap > 2.0

    def test_tether_overrides_harvester(self, sim):
        power = self._system(sim, voltage=2.0)
        power.tether(TetheredSupply(voltage=3.0))
        power.step(1.0, load_current=0.0)
        assert power.vcap == pytest.approx(3.0, abs=0.01)

    def test_tethered_counts_as_on(self, sim):
        power = self._system(sim, voltage=1.0)
        assert not power.is_on
        power.tether(TetheredSupply(voltage=2.5))
        assert power.is_on

    def test_tethered_cannot_brownout(self, sim):
        power = self._system(sim, voltage=2.4)
        power.tether(TetheredSupply(voltage=2.5))
        power.capacitor.voltage = 1.0  # momentary dip while tether ramps
        assert power.step(1 * units.MS, load_current=1 * units.MA)
        assert power.reboots == 0

    def test_vreg_tracks_in_dropout(self, sim):
        power = self._system(sim, voltage=1.9)
        assert power.vreg == pytest.approx(1.8)

    def test_headroom_energy_zero_at_brownout(self, sim):
        power = self._system(sim, voltage=1.8)
        assert power.headroom_energy() == pytest.approx(0.0, abs=1e-12)

    def test_reset_comparator_cold_start_rules(self, sim):
        power = self._system(sim, voltage=2.4)
        power.capacitor.voltage = 2.0
        power.reset_comparator()
        assert not power.is_on  # cold start needs full turn-on voltage

    def test_turn_on_threshold_must_exceed_brownout(self, sim):
        from repro.power.capacitor import StorageCapacitor
        from repro.power.harvester import NullSource

        with pytest.raises(ValueError):
            PowerSystem(
                sim,
                NullSource(),
                StorageCapacitor(1e-6),
                turn_on_voltage=1.8,
                brownout_voltage=2.4,
            )

    def test_power_change_hooks_fire(self, sim):
        power = self._system(sim, voltage=2.4)
        states = []
        power.on_power_change.append(states.append)
        power.capacitor.voltage = 1.7
        power.step(0.0)
        assert states == [PowerState.OFF]


class TestSawtooth:
    """The Figure 2B shape: charge to turn-on, discharge to brown-out."""

    def test_repeated_cycles(self, sim):
        power = make_wisp_power_system(sim, distance_m=1.6)
        cycles = 0
        for _ in range(3):
            power.charge_until_on()
            cycles += 1
            while power.is_on:
                sim.advance(1 * units.MS)
                power.step(1 * units.MS, load_current=1 * units.MA)
        assert power.turn_ons >= 3
        assert power.reboots >= 3

    def test_voltage_bounded_by_thresholds_during_cycling(self, sim):
        power = make_wisp_power_system(sim, distance_m=1.6)
        minimum, maximum = 10.0, 0.0
        for _ in range(2):
            power.charge_until_on()
            while power.is_on:
                sim.advance(0.5 * units.MS)
                power.step(0.5 * units.MS, load_current=1 * units.MA)
                minimum = min(minimum, power.vcap)
                maximum = max(maximum, power.vcap)
        assert minimum >= 1.75  # just below brown-out at the failing step
        assert maximum <= 2.45  # just above turn-on at the crossing step


class TestWispConstants:
    def test_full_energy_is_about_135_uj(self):
        c = WispPowerConstants()
        assert c.full_energy == pytest.approx(135.4e-6, rel=0.01)

    def test_cycle_time_at_4mhz(self):
        assert WispPowerConstants().cycle_time == pytest.approx(0.25e-6)

    def test_factory_defaults_to_brownout_start(self, sim):
        power = make_wisp_power_system(sim)
        assert power.vcap == pytest.approx(1.8)
