"""Unit + property tests for the RFID link: protocol, channel, reader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.rfid.channel import RfidChannel
from repro.io.rfid.protocol import (
    CommandKind,
    ReaderCommand,
    ReplyKind,
    RfidDecodeError,
    TagReply,
)
from repro.io.rfid.reader import RFIDReader
from repro.sim.kernel import Simulator


class TestProtocol:
    def test_query_roundtrip(self):
        cmd = ReaderCommand(CommandKind.QUERY, q=5)
        decoded = ReaderCommand.decode_bits(cmd.encode_bits())
        assert decoded == cmd

    def test_queryrep_roundtrip(self):
        cmd = ReaderCommand(CommandKind.QUERYREP)
        assert ReaderCommand.decode_bits(cmd.encode_bits()) == cmd

    def test_ack_roundtrip(self):
        cmd = ReaderCommand(CommandKind.ACK, rn16=0xABCD)
        assert ReaderCommand.decode_bits(cmd.encode_bits()) == cmd

    def test_truncated_query_rejected(self):
        bits = ReaderCommand(CommandKind.QUERY, q=1).encode_bits()[:-2]
        with pytest.raises(RfidDecodeError):
            ReaderCommand.decode_bits(bits)

    def test_garbage_rejected(self):
        with pytest.raises(RfidDecodeError):
            ReaderCommand.decode_bits([1, 1, 1, 1, 1, 1, 1, 1])

    def test_reply_bit_length(self):
        reply = TagReply(ReplyKind.EPC, payload=(1, 2))
        assert reply.bit_length() == 6 + 32

    @given(
        kind=st.sampled_from(list(CommandKind)),
        q=st.integers(0, 15),
        rn16=st.integers(0, 0xFFFF),
    )
    def test_roundtrip_property(self, kind, q, rn16):
        cmd = ReaderCommand(kind, q=q if kind is CommandKind.QUERY else 0,
                            rn16=rn16 if kind is CommandKind.ACK else 0)
        assert ReaderCommand.decode_bits(cmd.encode_bits()) == cmd


class TestChannel:
    def _channel(self, **kwargs):
        sim = Simulator(seed=5)
        return sim, RfidChannel(sim, **kwargs)

    def test_delivery_queues_at_tag(self):
        _, channel = self._channel(downlink_corruption_at_1m=0.0)
        channel.deliver_command(ReaderCommand(CommandKind.QUERY, q=0))
        assert channel.tag_rx_pending == 1
        delivered = channel.pop_tag_command()
        assert not delivered.corrupted
        assert ReaderCommand.decode_bits(delivered.bits).kind is CommandKind.QUERY

    def test_corrupted_delivery_flips_a_bit(self):
        _, channel = self._channel(downlink_corruption_at_1m=1.0)
        original = ReaderCommand(CommandKind.QUERY, q=0)
        channel.deliver_command(original)
        delivered = channel.pop_tag_command()
        assert delivered.corrupted
        assert delivered.bits != original.encode_bits()

    def test_external_taps_see_both_directions(self):
        _, channel = self._channel(downlink_corruption_at_1m=0.0)
        seen = []
        channel.command_taps.append(lambda d: seen.append("cmd"))
        channel.reply_taps.append(lambda r: seen.append("reply"))
        channel.deliver_command(ReaderCommand(CommandKind.QUERYREP))
        channel.send_reply(TagReply(ReplyKind.GENERIC))
        assert seen == ["cmd", "reply"]

    def test_tap_sees_replies_even_when_reader_misses(self):
        """EDB sits next to the tag: it hears what the reader loses."""
        _, channel = self._channel(uplink_loss_at_1m=1.0)
        taps = []
        channel.reply_taps.append(taps.append)
        received = channel.send_reply(TagReply(ReplyKind.GENERIC))
        assert not received
        assert len(taps) == 1

    def test_loss_scales_with_distance(self):
        _, near = self._channel(uplink_loss_at_1m=0.1)
        near.distance_m = 1.0
        assert near._scaled(0.1) == pytest.approx(0.1)
        near.distance_m = 2.0
        assert near._scaled(0.1) == pytest.approx(0.4)

    def test_clear_tag_queue(self):
        _, channel = self._channel()
        channel.deliver_command(ReaderCommand(CommandKind.QUERYREP))
        channel.clear_tag_queue()
        assert channel.tag_rx_pending == 0

    def test_rx_line_pulses_per_delivery(self):
        _, channel = self._channel()
        channel.deliver_command(ReaderCommand(CommandKind.QUERYREP))
        assert channel.rx_line.transitions == 2


class TestReader:
    def test_inventory_sends_queries_periodically(self):
        sim = Simulator(seed=5)
        channel = RfidChannel(sim)
        reader = RFIDReader(sim, channel, query_period=0.05)
        reader.start()
        sim.advance(0.5)
        assert reader.stats.queries_sent == pytest.approx(11, abs=1)

    def test_query_queryrep_cadence(self):
        sim = Simulator(seed=5)
        channel = RfidChannel(sim, downlink_corruption_at_1m=0.0)
        reader = RFIDReader(sim, channel, query_period=0.05, queryreps_per_query=3)
        reader.start()
        sim.advance(0.41)
        kinds = []
        while channel.tag_rx_pending:
            kinds.append(
                ReaderCommand.decode_bits(channel.pop_tag_command().bits).kind
            )
        assert kinds[0] is CommandKind.QUERY
        assert kinds[1] is CommandKind.QUERYREP

    def test_response_rate_counts_replies(self):
        sim = Simulator(seed=5)
        channel = RfidChannel(sim, uplink_loss_at_1m=0.0)
        reader = RFIDReader(sim, channel, query_period=0.05)
        reader.start()
        sim.advance(0.26)
        # Tag answers every query it sees.
        while channel.tag_rx_pending:
            channel.pop_tag_command()
            channel.send_reply(TagReply(ReplyKind.GENERIC))
        # Replies arrive after the last query, so the rate is bounded.
        assert 0.0 < reader.stats.response_rate <= 1.0

    def test_stop_halts_inventory(self):
        sim = Simulator(seed=5)
        channel = RfidChannel(sim)
        reader = RFIDReader(sim, channel, query_period=0.05)
        reader.start()
        sim.advance(0.2)
        sent = reader.stats.queries_sent
        reader.stop()
        sim.advance(0.5)
        assert reader.stats.queries_sent == sent

    def test_replies_per_second(self):
        sim = Simulator(seed=5)
        reader = RFIDReader(sim, RfidChannel(sim))
        reader.stats.replies_heard = 26
        assert reader.replies_per_second(2.0) == pytest.approx(13.0)
