"""Regression tests for the hot-path caches and energy-accounting fixes.

Covers the PR's two halves:

- bugfixes: stack traffic charging region cycles, sleep energy landing
  in ``energy_consumed`` (and running post-work hooks), code-marker
  lines released on a mid-pulse brown-out, ``call_every`` rejecting
  past starts;
- optimisations staying invisible: decode-cache invalidation on code
  stores, region-lookup fault semantics, batched charging reproducing
  the stepped trajectory bit for bit, and the fixed-seed campaign
  report matching its committed golden byte for byte.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.config import CampaignConfig
from repro.campaign.report import render_json
from repro.campaign.scheduler import run_campaign
from repro.mcu.assembler import assemble
from repro.mcu.cpu import Cpu, Halted
from repro.mcu.device import PowerFailure, TargetDevice
from repro.mcu.memory import (
    FRAM_BASE,
    MemoryFault,
    SRAM_BASE,
    SRAM_SIZE,
    make_msp430_memory_map,
)
from repro.perf.harness import run_all
from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import NullSource, RFHarvester
from repro.power.supply import PowerSystem
from repro.power.wisp import make_wisp_power_system
from repro.sim import units
from repro.sim.kernel import Simulator


def _null_powered_device(voltage: float = 2.6) -> tuple[Simulator, TargetDevice]:
    """A device on a charged capacitor with no source: pure discharge."""
    sim = Simulator(seed=5)
    power = PowerSystem(
        sim=sim,
        source=NullSource(),
        capacitor=StorageCapacitor(capacitance=47 * units.UF, voltage=voltage),
    )
    return sim, TargetDevice(sim, power)


class TestStackEnergyAccounting:
    def _spends_for(self, source: str) -> list[list[int]]:
        """Per-instruction spend() call lists for one run of ``source``."""
        memory = make_msp430_memory_map()
        spends: list[list[int]] = []
        cpu = Cpu(memory, spend=lambda c: spends[-1].append(c))
        program = assemble(source)
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        while True:
            spends.append([])
            try:
                cpu.step()
            except Halted:
                return spends

    def test_push_charges_stack_write_cycles(self):
        spends = self._spends_for("push #1\nhalt")
        # Instruction cycles, then the SRAM write the push performs.
        assert len(spends[0]) == 2
        assert spends[0][1] == 1  # SRAM write cost

    def test_pop_charges_stack_read_cycles(self):
        spends = self._spends_for("push #1\npop r4\nhalt")
        pop = spends[1]
        assert len(pop) == 2
        assert pop[1] == 1  # SRAM read cost

    def test_call_ret_charge_stack_cycles(self):
        spends = self._spends_for(
            "fn: ret\nstart: call #fn\nhalt"
        )
        call = spends[0]  # execution starts at `start`: call, ret, halt
        ret = spends[1]
        assert len(call) == 2 and call[1] == 1
        assert len(ret) == 2 and ret[1] == 1

    def test_push_costs_what_equivalent_mov_costs(self):
        mov = self._spends_for("buf: .word 0\nstart: mov #1, &buf\nhalt")
        push = self._spends_for("push #1\nhalt")
        # The MOV writes FRAM (3 cycles), the PUSH writes SRAM (1), but
        # both now pay a region write on top of the instruction cycles.
        assert len(mov[0]) == len(push[0]) == 2


class TestSleepAccounting:
    def test_sleep_accumulates_energy_consumed(self):
        _, device = _null_powered_device()
        before = device.energy_consumed
        device.sleep(10 * units.MS)
        assert device.energy_consumed > before

    def test_sleep_runs_post_work_hooks(self):
        _, device = _null_powered_device()
        fired = []
        device.post_work_hooks.append(lambda: fired.append(device.sim.now))
        device.sleep(1 * units.MS)
        assert fired


class TestCodeMarkerRelease:
    def test_marker_lines_released_on_brownout_mid_pulse(self):
        _, device = _null_powered_device()
        # Sag the rail below brown-out without refreshing the comparator:
        # the pulse's one-cycle spend observes the dead rail and raises.
        device.power.capacitor.voltage = device.power.brownout_voltage - 0.01
        with pytest.raises(PowerFailure):
            device.code_marker(0b101)
        assert all(not line.state for line in device.marker_lines)


class TestSchedulerGuards:
    def test_call_every_rejects_past_start(self):
        sim = Simulator(seed=1)
        sim.advance(1.0)
        with pytest.raises(ValueError):
            sim.call_every(0.1, lambda: None, start=0.5)

    def test_call_every_accepts_present_and_future_start(self):
        sim = Simulator(seed=1)
        sim.advance(1.0)
        sim.call_every(0.1, lambda: None, start=sim.now)
        sim.call_every(0.1, lambda: None, start=sim.now + 0.5)


class TestDecodeCache:
    def test_self_modifying_code_is_observed(self):
        memory = make_msp430_memory_map()
        cpu = Cpu(memory)
        program = assemble("start: nop\npatch: nop\nhalt")
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        cpu.step()  # nop
        cpu.step()  # patch: nop — now cached
        halt_word = assemble("halt").words[0]
        memory.write_u16(program.symbols["patch"], halt_word)
        cpu.pc = program.symbols["patch"]
        with pytest.raises(Halted):
            cpu.step()

    def test_region_level_write_plus_explicit_invalidate(self):
        memory = make_msp430_memory_map()
        cpu = Cpu(memory)
        program = assemble("patch: nop\nhalt")
        memory.write_bytes(program.origin, program.to_bytes())
        cpu.reset(program.entry)
        cpu.step()  # cache the nop
        # A corruptor-style write through the region bypasses the map's
        # observers by design; the explicit invalidation hook makes the
        # CPU see the new bytes.
        halt_word = assemble("halt").words[0]
        region = memory.region_at(program.origin, 2)
        region.write_u16(program.symbols["patch"], halt_word)
        cpu.invalidate_decode_cache()
        cpu.pc = program.symbols["patch"]
        with pytest.raises(Halted):
            cpu.step()

    def test_clear_volatile_notifies_write_observers(self):
        memory = make_msp430_memory_map()
        seen = []
        memory.write_observers.append(lambda a, w: seen.append((a, w)))
        memory.clear_volatile()
        assert (SRAM_BASE, SRAM_SIZE) in seen


class TestRegionLookup:
    def test_fault_semantics_survive_the_caches(self):
        memory = make_msp430_memory_map()
        # Warm the last-hit and page caches first.
        assert memory.region_at(SRAM_BASE, 2).name == "sram"
        assert memory.region_at(FRAM_BASE, 2).name == "fram"
        with pytest.raises(MemoryFault):
            memory.region_at(0x0000, 2)  # NULL dereference
        with pytest.raises(MemoryFault):
            memory.region_at(SRAM_BASE + SRAM_SIZE - 1, 2)  # straddle
        with pytest.raises(MemoryFault):
            memory.region_at(0x3000, 2)  # gap between regions
        # Valid lookups still work after the faults.
        assert memory.region_at(SRAM_BASE + 4, 2).name == "sram"


class TestBatchedCharging:
    def _charge(self, batch: bool, duty: bool) -> tuple[float, float, int, int]:
        sim = Simulator(seed=99)
        if duty:
            source = RFHarvester(
                distance_m=1.4,
                fading_sigma=1.0,
                rng=sim.rng,
                duty_period=3 * units.MS,
                duty_fraction=0.7,
            )
            power = PowerSystem(
                sim=sim,
                source=source,
                capacitor=StorageCapacitor(
                    capacitance=47 * units.UF, voltage=1.8
                ),
            )
        else:
            power = make_wisp_power_system(sim, fading_sigma=1.5)
        ticks = []
        sim.call_every(500 * units.US, lambda: ticks.append(sim.now))
        power.charge_until_on(batch=batch)
        return sim.now, power.vcap, power.turn_ons, len(ticks)

    @pytest.mark.parametrize("duty", [False, True])
    def test_batched_equals_stepped_bit_for_bit(self, duty):
        fast = self._charge(batch=True, duty=duty)
        slow = self._charge(batch=False, duty=duty)
        assert fast == slow  # exact float equality, by construction

    def test_batching_skips_no_scheduled_events(self):
        # The periodic tick count is part of the tuple above, but assert
        # explicitly that batching does not starve the event queue.
        _, _, _, fast_ticks = self._charge(batch=True, duty=False)
        assert fast_ticks > 0


GOLDEN_CONFIG = CampaignConfig(
    app="linked_list",
    runs=16,
    seed=20260806,
    iterations=16,
    duration=0.6,
    workers=1,
    shrink=True,
    shrink_limit=2,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "campaign_golden.json"


@pytest.mark.campaign_smoke
def test_campaign_report_is_byte_identical_to_golden():
    """The caching/batching rewrite must not move a single byte.

    The golden file was rendered before the decode cache, region page
    table, and charging fast path existed (but after the energy-model
    bugfixes), so this test pins the optimisations to the exact
    pre-optimisation trajectories.
    """
    report = run_campaign(GOLDEN_CONFIG)
    assert render_json(report) == GOLDEN_PATH.read_text()


@pytest.mark.perf_smoke
def test_perf_harness_smoke():
    """A scaled-down benchmark run produces well-formed results."""
    results = run_all(scale=0.02)
    assert set(results) == {
        "isa_throughput", "superblock_hot_loop", "charge_discharge",
        "campaign", "snapshot_fork", "campaign_opsweep", "fuzz_search",
    }
    for result in results.values():
        payload = result.to_dict()
        assert payload["value"] > 0
        assert payload["wall_s"] > 0
        json.dumps(payload)  # JSON-serialisable
