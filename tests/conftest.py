"""Shared fixtures: simulated targets at several fidelity/speed points."""

from __future__ import annotations

import pytest

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile
from repro.testing import make_fast_target


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def wisp(sim: Simulator) -> TargetDevice:
    """A paper-faithful WISP (47 uF) on harvested power, charged to ON."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    power.charge_until_on()
    return device


@pytest.fixture
def fast_target(sim: Simulator) -> TargetDevice:
    """A fast-cycling target (4.7 uF) for many-reboot tests."""
    return make_fast_target(sim)


@pytest.fixture
def wisp_with_edb(sim: Simulator) -> tuple[TargetDevice, EDB]:
    """A charged WISP with an EDB board attached."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    power.charge_until_on()
    return device, edb


@pytest.fixture
def wisp_with_accel(sim: Simulator) -> TargetDevice:
    """A charged WISP with an accelerometer on its I2C bus."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
    power.charge_until_on()
    return device
