"""Shared fixtures: simulated targets at several fidelity/speed points.

Also the suite's hang guard: every test runs under a wall-clock limit
(default 180 s, override with ``@pytest.mark.timeout_guard(seconds)``),
so a regression that reintroduces a livelock fails loudly instead of
wedging the whole tier-1 run.  The guard uses the same nesting-safe
SIGALRM helper the campaign watchdog uses (`repro.testing.time_limit`)
and degrades to no-op where alarms are unavailable.
"""

from __future__ import annotations

import pytest

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile
from repro.testing import make_fast_target, time_limit

#: Generous default per-test wall budget: the slowest legitimate tier-1
#: tests finish in a few seconds, so only a genuine hang trips this.
DEFAULT_TEST_TIMEOUT_S = 180.0


class TestTimeoutGuard(Exception):
    """A test exceeded the suite's per-test wall-clock guard."""


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout_guard")
    seconds = float(marker.args[0]) if marker and marker.args else (
        DEFAULT_TEST_TIMEOUT_S
    )
    with time_limit(
        seconds,
        make_error=lambda: TestTimeoutGuard(
            f"{item.nodeid} exceeded the {seconds:g}s per-test guard "
            f"(likely hang/livelock)"
        ),
    ):
        yield


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def wisp(sim: Simulator) -> TargetDevice:
    """A paper-faithful WISP (47 uF) on harvested power, charged to ON."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    power.charge_until_on()
    return device


@pytest.fixture
def fast_target(sim: Simulator) -> TargetDevice:
    """A fast-cycling target (4.7 uF) for many-reboot tests."""
    return make_fast_target(sim)


@pytest.fixture
def wisp_with_edb(sim: Simulator) -> tuple[TargetDevice, EDB]:
    """A charged WISP with an EDB board attached."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    power.charge_until_on()
    return device, edb


@pytest.fixture
def wisp_with_accel(sim: Simulator) -> TargetDevice:
    """A charged WISP with an accelerometer on its I2C bus."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
    power.charge_until_on()
    return device
