"""Unit tests for the high-level device API (the C-like program model)."""

import pytest

from repro.mcu.device import PowerFailure
from repro.mcu.hlapi import DeviceAPI
from repro.mcu.memory import FRAM_BASE, MemoryFault, SRAM_BASE


@pytest.fixture
def api(wisp):
    return DeviceAPI(wisp)


class TestStaticAllocation:
    def test_nv_var_stable_across_calls(self, api):
        a = api.nv_var("x")
        b = api.nv_var("x")
        assert a == b

    def test_nv_var_distinct_names_distinct_addresses(self, api):
        assert api.nv_var("x") != api.nv_var("y")

    def test_nv_var_in_fram(self, api):
        address = api.nv_var("x")
        assert api.device.memory.region_at(address).name == "fram"

    def test_nv_var_word_aligned(self, api):
        api.nv_var("odd", size=3)
        follower = api.nv_var("next")
        assert follower % 2 == 0

    def test_nv_var_size_conflict_rejected(self, api):
        api.nv_var("x", size=4)
        with pytest.raises(ValueError):
            api.nv_var("x", size=8)

    def test_sram_var_stable_and_volatile_region(self, api):
        a = api.sram_var("buf", 16)
        assert api.sram_var("buf", 16) == a
        assert api.device.memory.region_at(a).name == "sram"

    def test_sram_exhaustion(self, api):
        with pytest.raises(MemoryError):
            api.sram_var("huge", 64 * 1024)


class TestCostedOperations:
    def test_load_store_roundtrip(self, api):
        address = api.nv_var("v")
        api.store_u16(address, 0xCAFE)
        assert api.load_u16(address) == 0xCAFE

    def test_ops_cost_cycles(self, api, wisp):
        before = wisp.cycles_executed
        api.store_u16(api.nv_var("v"), 1)
        api.load_u16(api.nv_var("v"))
        api.compute(10)
        api.branch()
        assert wisp.cycles_executed > before

    def test_fram_access_costs_more_than_sram(self, api, wisp):
        nv = api.nv_var("a")
        sram = api.sram_var("b")
        before = wisp.cycles_executed
        api.load_u16(nv)
        fram_cost = wisp.cycles_executed - before
        before = wisp.cycles_executed
        api.load_u16(sram)
        sram_cost = wisp.cycles_executed - before
        assert fram_cost > sram_cost

    def test_memset_fills(self, api):
        buf = api.sram_var("buf", 8)
        api.memset(buf, 0xAB, 8)
        assert api.load_bytes(buf, 8) == b"\xab" * 8

    def test_memset_to_null_faults(self, api):
        with pytest.raises(MemoryFault):
            api.memset(0x0000, 0xAB, 8)

    def test_bulk_cost_scales_with_length(self, api, wisp):
        buf = api.sram_var("big", 128)
        before = wisp.cycles_executed
        api.store_bytes(buf, b"\x00" * 4)
        small = wisp.cycles_executed - before
        before = wisp.cycles_executed
        api.store_bytes(buf, b"\x00" * 128)
        big = wisp.cycles_executed - before
        assert big > small

    def test_gpio_toggle(self, api, wisp):
        api.gpio_toggle("main_loop")
        assert wisp.gpio.read("main_loop")
        api.gpio_toggle("main_loop")
        assert not wisp.gpio.read("main_loop")

    def test_led_helper(self, api, wisp):
        api.led(True)
        assert wisp.gpio.read("led")

    def test_adc_read_returns_vcap(self, api, wisp):
        value = api.adc_read("vcap")
        assert value == pytest.approx(wisp.power.vcap, abs=0.01)

    def test_uart_print_transmits(self, api, wisp):
        chunks = []
        wisp.uart.subscribe_tx(chunks.append)
        api.uart_print("hi")
        assert b"".join(chunks) == b"hi"


class TestReleaseBuildWrappers:
    """With no EDB linked in, the edb_* wrappers compile to nothing."""

    def test_watchpoint_noop(self, api, wisp):
        before = wisp.cycles_executed
        api.edb_watchpoint(1)
        assert wisp.cycles_executed == before

    def test_printf_noop(self, api):
        api.edb_printf("nothing happens")

    def test_breakpoint_noop(self, api):
        api.edb_breakpoint(1)

    def test_energy_guard_noop_context(self, api):
        with api.edb_energy_guard():
            api.compute(10)

    def test_passing_assert_noop(self, api):
        api.edb_assert(True, "fine")

    def test_failing_assert_drains_to_brownout(self, api, wisp):
        """Conventional assert behaviour: spin until the supply dies."""
        wisp.power.source.enabled = False
        with pytest.raises(PowerFailure):
            api.edb_assert(False, "boom")

    def test_drain_until_brownout_always_fails(self, api, wisp):
        wisp.power.source.enabled = False
        with pytest.raises(PowerFailure):
            api.drain_until_brownout()


class TestPostMortemCoreDump:
    """The §3.3.2 contrast: scarce post-mortem clues vs a live session."""

    def test_no_dump_before_any_failure(self, api):
        assert api.read_core_dump() is None

    def test_failed_assert_leaves_a_dump(self, api, wisp):
        wisp.power.source.enabled = False
        with pytest.raises(PowerFailure):
            api.edb_assert(False, "boom")
        dump = api.read_core_dump()
        assert dump is not None
        assert dump["failures"] == 1
        # The recorded voltage is near where the assert fired.
        assert 1700 < dump["vcap_mv"] < 2500

    def test_dump_counts_repeated_failures(self, api, wisp):
        wisp.power.source.enabled = False
        for expected in (1, 2, 3):
            wisp.power.capacitor.voltage = 2.4
            wisp.power.reset_comparator()
            with pytest.raises(PowerFailure):
                api.edb_assert(False, "again")
            assert api.read_core_dump()["failures"] == expected

    def test_dump_survives_reboot(self, api, wisp):
        wisp.power.source.enabled = False
        with pytest.raises(PowerFailure):
            api.edb_assert(False, "x")
        wisp.reboot()
        assert api.read_core_dump() is not None
