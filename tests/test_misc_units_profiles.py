"""Tests for units/conversions, environment profiles, session, facade."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.power.harvester import RFHarvester
from repro.power.profiles import (
    DistanceStep,
    MovementProfile,
    ReaderDutyCycle,
    sawtooth_rf_trace,
)
from repro.sim import units


class TestUnits:
    def test_prefix_values(self):
        assert 1 * units.MA == 1e-3
        assert 1 * units.UA == 1e-6
        assert 1 * units.NA == 1e-9
        assert 47 * units.UF == pytest.approx(47e-6)
        assert 4 * units.MHZ == 4e6

    def test_dbm_conversions(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    @given(dbm=st.floats(-30, 40))
    def test_dbm_roundtrip(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_cap_energy_monotone_in_voltage(self):
        assert units.cap_energy(47e-6, 2.4) > units.cap_energy(47e-6, 1.8)

    def test_cap_voltage_of_zero_energy(self):
        assert units.cap_voltage(47e-6, 0.0) == 0.0


class TestMovementProfile:
    def test_distance_changes_on_schedule(self):
        sim = Simulator(seed=1)
        harvester = RFHarvester(distance_m=1.0)
        MovementProfile(
            sim,
            harvester,
            [DistanceStep(1.0, 0.5), DistanceStep(2.0, 0.5), DistanceStep(0.5, 0.5)],
        )
        sim.advance(0.1)
        assert harvester.distance_m == 1.0
        sim.advance(0.5)
        assert harvester.distance_m == 2.0
        sim.advance(0.5)
        assert harvester.distance_m == 0.5

    def test_final_distance_holds(self):
        sim = Simulator(seed=1)
        harvester = RFHarvester(distance_m=1.0)
        MovementProfile(sim, harvester, [DistanceStep(3.0, 0.1)])
        sim.advance(5.0)
        assert harvester.distance_m == 3.0

    def test_empty_profile_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            MovementProfile(sim, RFHarvester(), [])

    def test_changes_recorded_in_trace(self):
        sim = Simulator(seed=1)
        MovementProfile(sim, RFHarvester(), [DistanceStep(2.0, 0.1)])
        sim.advance(0.2)
        assert sim.trace.count("env.distance") == 1


class TestReaderDutyCycle:
    def test_carrier_toggles(self):
        sim = Simulator(seed=1)
        harvester = RFHarvester()
        ReaderDutyCycle(sim, harvester, on_time=0.1, off_time=0.05)
        assert harvester.enabled
        sim.advance(0.12)
        assert not harvester.enabled
        sim.advance(0.05)
        assert harvester.enabled

    def test_invalid_times_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            ReaderDutyCycle(sim, RFHarvester(), on_time=0.0)


class TestSawtoothTrace:
    def test_alternates_voc(self):
        source = sawtooth_rf_trace(1.0, period_s=0.2, duty=0.5)
        assert source.open_circuit_voltage(0.05) > 0
        assert source.open_circuit_voltage(0.15) == 0.0
        assert source.open_circuit_voltage(0.25) > 0

    def test_duty_validated(self):
        with pytest.raises(ValueError):
            sawtooth_rf_trace(1.0, duty=1.5)


class TestDebuggerFacade:
    def test_double_attach_rejected(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        with pytest.raises(RuntimeError):
            edb.board.attach(device)

    def test_libedb_is_cached(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        assert edb.libedb() is edb.libedb()

    def test_untrace(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        edb.trace("energy")
        edb.untrace("energy")
        assert "energy" not in edb.monitor.enabled

    def test_worst_case_interference_scale(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        assert edb.worst_case_interference(trials=10) < 2 * units.UA

    def test_is_tethered_reflects_power(self, wisp_with_edb):
        device, edb = wisp_with_edb
        assert not edb.is_tethered
        edb.board.energy.keep_alive()
        assert edb.is_tethered
        edb.release()
        assert not edb.is_tethered


class TestSessionTranscript:
    def test_transcript_records_actions(self, wisp_with_edb):
        from repro.core.board import BreakEvent
        from repro.core.session import InteractiveSession
        from repro.mcu.memory import FRAM_BASE

        device, edb = wisp_with_edb
        edb.libedb()
        edb.board.energy.begin_task()
        event = BreakEvent(reason="console", time=0.0, vcap=device.power.vcap)
        session = InteractiveSession(edb.board, event)
        session.write_u16(FRAM_BASE, 0xABCD)
        session.read_u16(FRAM_BASE)
        session.vcap()
        edb.board.energy.end_task()
        text = session.render()
        assert "session opened: console" in text
        assert "0xABCD" in text
        assert "vcap ->" in text

    def test_session_registers_view(self, wisp_with_edb):
        from repro.core.board import BreakEvent
        from repro.core.session import InteractiveSession

        device, edb = wisp_with_edb
        device.cpu.reset(0xA000)
        device.cpu.registers[4] = 0x55
        event = BreakEvent(reason="console", time=0.0, vcap=2.4)
        session = InteractiveSession(edb.board, event)
        assert session.registers()[4] == 0x55
