"""Unit + property tests for the debug-link wire protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.protocol import (
    Decoder,
    Message,
    MsgType,
    ProtocolError,
    SOF,
    encode,
    frame_size,
)


class TestFraming:
    def test_frame_layout(self):
        frame = encode(Message(MsgType.ACK))
        assert frame[0] == SOF
        assert frame[1] == int(MsgType.ACK)
        assert frame[2] == 0  # length

    def test_checksum_is_sum_of_body(self):
        frame = encode(Message.printf("a"))
        body = frame[1:-1]
        assert frame[-1] == sum(body) & 0xFF

    def test_frame_size_matches_encoding(self):
        message = Message.printf("hello")
        assert frame_size(message) == len(encode(message))

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode(Message(MsgType.PRINTF, b"x" * 300))


class TestTypedConstructors:
    def test_read_mem_fields(self):
        message = Message.read_mem(0x4402, 8)
        assert message.decode_address() == 0x4402
        assert message.payload[2] == 8

    def test_read_mem_size_validated(self):
        with pytest.raises(ProtocolError):
            Message.read_mem(0, 0)
        with pytest.raises(ProtocolError):
            Message.read_mem(0, 300)

    def test_write_mem_fields(self):
        message = Message.write_mem(0x1C00, b"\x01\x02")
        assert message.decode_address() == 0x1C00
        assert message.payload[2:] == b"\x01\x02"

    def test_assert_fail_carries_id_and_text(self):
        message = Message.assert_fail(3, "tail broken")
        assert message.payload[0] == 3
        assert message.decode_text(skip=1) == "tail broken"

    def test_printf_text_roundtrip(self):
        assert Message.printf("hello").decode_text() == "hello"

    def test_decode_address_needs_payload(self):
        with pytest.raises(ProtocolError):
            Message(MsgType.ACK).decode_address()


class TestDecoder:
    def test_single_frame(self):
        decoder = Decoder()
        messages = decoder.feed(encode(Message.printf("hi")))
        assert len(messages) == 1
        assert messages[0].decode_text() == "hi"

    def test_multiple_frames_in_one_feed(self):
        decoder = Decoder()
        data = encode(Message(MsgType.ACK)) + encode(Message.printf("x"))
        messages = decoder.feed(data)
        assert [m.type for m in messages] == [MsgType.ACK, MsgType.PRINTF]

    def test_byte_at_a_time(self):
        decoder = Decoder()
        frame = encode(Message.printf("stream"))
        messages = []
        for i in range(len(frame)):
            messages += decoder.feed(frame[i : i + 1])
        assert len(messages) == 1

    def test_resync_after_garbage(self):
        decoder = Decoder()
        data = b"\x00\x13\x37" + encode(Message(MsgType.ACK))
        messages = decoder.feed(data)
        assert len(messages) == 1
        assert decoder.errors > 0

    def test_corrupted_checksum_dropped(self):
        decoder = Decoder()
        frame = bytearray(encode(Message.printf("ok")))
        frame[-1] ^= 0xFF
        assert decoder.feed(bytes(frame)) == []
        assert decoder.errors > 0

    def test_truncated_frame_then_complete(self):
        """A power failure mid-frame must not poison later frames."""
        decoder = Decoder()
        dead = encode(Message.printf("lost"))[:4]
        alive = encode(Message.printf("ok"))
        messages = decoder.feed(dead + alive)
        texts = [m.decode_text() for m in messages if m.type is MsgType.PRINTF]
        assert texts == ["ok"]

    def test_unknown_type_skipped(self):
        decoder = Decoder()
        body = bytes([0x7F, 0x00])
        frame = bytes([SOF]) + body + bytes([sum(body) & 0xFF])
        assert decoder.feed(frame) == []
        assert decoder.errors == 1

    @given(
        texts=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=40,
            ),
            min_size=1,
            max_size=10,
        ),
        chunk=st.integers(1, 7),
    )
    def test_stream_roundtrip_property(self, texts, chunk):
        """Any message sequence survives arbitrary chunking."""
        stream = b"".join(encode(Message.printf(t)) for t in texts)
        decoder = Decoder()
        out = []
        for i in range(0, len(stream), chunk):
            out += decoder.feed(stream[i : i + chunk])
        assert [m.decode_text() for m in out] == texts
        assert decoder.errors == 0
