"""Snapshot/restore bit-exactness properties (``repro.snapshot``).

The campaign engine's prefix-forking rests on one property: restoring a
:class:`~repro.snapshot.DeviceSnapshot` and resuming produces *exactly*
the trajectory of never having stopped — same registers, same memory
bytes, same capacitor voltage, same RNG draws, across brown-out/reboot
boundaries and under every fault-injection axis.  These tests state
that property directly, plus the report-level consequence: campaign
reports are byte-identical with snapshot forking on and off.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.faults import StateCorruptor, plan_faults
from repro.campaign.forking import _program_state, _restore_program_state
from repro.campaign.report import render_json
from repro.campaign.runner import _install_injectors
from repro.campaign.scheduler import run_campaign
from repro.power.harvester import RFHarvester
from repro.runtime.checkpoint import fletcher16
from repro.runtime.executor import IntermittentExecutor
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.snapshot import DirtyTracker, capture, restore
from repro.testing import make_fast_target

from tests.test_hotpath import GOLDEN_CONFIG, GOLDEN_PATH

pytestmark = pytest.mark.snapshot


def _fingerprint(sim, target) -> dict:
    """Everything the simulated world can observe, cheaply comparable.

    Memory is summarised as per-region Fletcher-16 checksums (the same
    primitive the task runtime trusts for checkpoint integrity), the
    rest is exact values — floats included, because the contract is
    bit-identity, not tolerance.
    """
    return {
        "registers": tuple(target.cpu.registers),
        "memory": {
            region.name: fletcher16(bytes(region._data))
            for region in target.memory.regions
        },
        "vcap": target.power.capacitor._voltage,
        "now": sim.now,
        "cycles": target.cycles_executed,
        "retired": target.cpu.instructions_retired,
        "reboots": target.reboot_count,
        "energy": target.energy_consumed,
    }


#: One entry per fault-injection axis, including checkpoint corruption
#: (region-level writes that bypass the map accessors) and RF fading
#: (an RNG-consuming environment, exercising stream-position capture).
AXES = {
    "op_index": {"modes": ("op_index",)},
    "energy_level": {"modes": ("energy_level",)},
    "commit_boundary": {"modes": ("commit_boundary",)},
    "op_index+flips": {"modes": ("op_index",), "corrupt_checkpoints": True},
    "op_index+fading": {"modes": ("op_index",), "fading_range": (1.5, 1.5)},
}


def _build_leg(axis: str):
    kwargs = {
        "app": "linked_list",
        "runs": 4,
        "seed": 99,
        "iterations": 12,
        "duration": 0.6,
        "workers": 1,
        "shrink": False,
        "distance_range": (1.6, 1.6),
        "fading_range": (0.0, 0.0),
    }
    kwargs.update(AXES[axis])
    config = CampaignConfig(**kwargs)
    run_seed = derive_seed(config.seed, "run", 0)
    plan = plan_faults(config, random.Random(derive_seed(run_seed, "plan")))
    adapter = get_adapter(config.app)
    sim = Simulator(seed=derive_seed(run_seed, "intermittent"))
    target = make_fast_target(
        sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
    )
    if plan.duty is not None and isinstance(target.power.source, RFHarvester):
        target.power.source.duty_period = plan.duty[0]
        target.power.source.duty_fraction = plan.duty[1]
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    injectors = _install_injectors(target, plan)
    if plan.flips:
        injectors.append(
            StateCorruptor(
                target,
                adapter.state_ranges(program, executor.api),
                list(plan.flips),
            )
        )
    return config, sim, target, program, executor, injectors


@pytest.mark.parametrize("axis", sorted(AXES))
def test_restore_then_resume_is_bit_identical(axis):
    """snapshot -> restore -> resume == never having stopped.

    Runs a fault-injected leg partway, captures, finishes it (the
    straight-through trajectory), then rewinds to the capture and
    finishes again.  Both trajectories cross at least one
    brown-out/reboot boundary after the capture point, and must agree
    exactly: registers, memory checksums, capacitor voltage, simulated
    clock, energy accounting, and subsequent RNG draws.
    """
    config, sim, target, program, executor, injectors = _build_leg(axis)
    deadline = sim.now + config.duration
    mid = sim.now + 0.35 * config.duration

    executor.run(until=mid, stop_on_fault=True)
    tracker = DirtyTracker(target.memory)
    snap = capture(target, tracker)
    injector_states = [injector.export_state() for injector in injectors]
    program_state = _program_state(program)
    reboots_at_capture = target.reboot_count

    executor.run(until=deadline, stop_on_fault=True)
    straight = _fingerprint(sim, target)
    straight_draws = [sim.rng.gauss("probe", 0.0, 1.0) for _ in range(3)]

    restore(target, snap, tracker)
    for injector, state in zip(injectors, injector_states):
        injector.restore_state(state)
    _restore_program_state(program, program_state)
    executor.run(until=deadline, stop_on_fault=True)
    replay = _fingerprint(sim, target)
    # The "probe" stream was born after the capture, so the restore
    # dropped it; recreating it on demand re-derives the same seed and
    # must replay the same values.
    replay_draws = [sim.rng.gauss("probe", 0.0, 1.0) for _ in range(3)]

    assert replay == straight
    assert replay_draws == straight_draws
    # The resumed stretch was a real intermittent workload, not a tail:
    # it crossed at least one brown-out/reboot boundary.
    assert straight["reboots"] > reboots_at_capture


def test_differential_capture_equals_full_capture():
    """Dirty-page capture sees exactly what a full copy sees.

    Interleaves execution with paired captures (one through a
    :class:`DirtyTracker`, one full) and requires identical pages each
    time — including after a reboot's ``clear_volatile``, which writes
    whole regions behind the accessors.
    """
    _, sim, target, _, executor, _ = _build_leg("op_index")
    tracker = DirtyTracker(target.memory)
    deadline = sim.now + 0.6
    for fraction in (0.2, 0.4, 0.8):
        executor.run(until=sim.now + fraction * 0.2 + 0.05,
                     stop_on_fault=True)
        differential = capture(target, tracker)
        full = capture(target, None)
        assert differential.memory_pages == full.memory_pages
        assert sim.now <= deadline + 0.6  # sanity: bounded progress


@pytest.mark.perf_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_NO_BATCH", "") not in ("", "0"),
    reason="campaign_opsweep measures the scalar path under "
           "REPRO_NO_BATCH, which is not comparable to the batched "
           "baseline the gate checks against",
)
def test_quick_perf_gate_smoke(tmp_path):
    """``python -m repro.perf --check --quick`` is wired and passes.

    This is the tier-1-adjacent gate ``scripts/check.sh`` runs; the
    smoke keeps its plumbing (argument parsing, baseline loading, the
    max(baseline, before) comparison) from rotting.  A tiny scale keeps
    it fast, and ``--before`` pointing at the committed baseline
    exercises the best-reference selection path.
    """
    from repro.perf.__main__ import main

    exit_code = main([
        "--check", "--quick", "--scale", "0.05",
        "--repeats", "2",
        "--before", "benchmarks/perf_baseline.json",
        "--out", str(tmp_path / "bench.json"),
    ])
    # Exit 1 would mean a >60% cliff at smoke scale — best-of-2 keeps
    # single-core host noise far below that; 2 means no baseline.
    assert exit_code == 0


def test_golden_report_byte_identical_without_snapshot():
    """The legacy (from-reset) path still reproduces the golden bytes.

    The default-path counterpart — snapshot forking *on* — is asserted
    by ``tests/test_hotpath.py``; together they pin both execution
    paths to the same committed report.
    """
    report = run_campaign(GOLDEN_CONFIG, snapshot=False)
    assert render_json(report) == GOLDEN_PATH.read_text()


def test_forked_campaign_report_identical_to_legacy():
    """Snapshot on == snapshot off, byte for byte, with real fork groups.

    A pinned environment (fixed distance, no fading) makes every
    same-mode run share a fork group, so this exercises genuine prefix
    sharing — chain snapshots, mid-schedule restores, shrinker replay
    sessions — not the singleton fallback.
    """
    config = CampaignConfig(
        app="linked_list",
        runs=12,
        seed=777,
        iterations=16,
        duration=0.6,
        workers=1,
        shrink=True,
        shrink_limit=2,
        modes=("op_index", "commit_boundary"),
        distance_range=(1.6, 1.6),
        fading_range=(0.0, 0.0),
    )
    forked = render_json(run_campaign(config, snapshot=True))
    legacy = render_json(run_campaign(config, snapshot=False))
    assert forked == legacy


# -- block-translation instrumentation and coverage across restore ----------

def _run_branchy_with_coverage(seed: int):
    """A powered ISA leg with a recorder attached; returns (sim, target)."""
    from repro.mcu.assembler import assemble
    from repro.mcu.coverage import CoverageRecorder
    from repro.runtime.isa_executor import IsaIntermittentExecutor

    from tests.test_blockcache import _random_branchy

    sim = Simulator(seed=seed)
    target = make_fast_target(sim, distance_m=1.6, fading_sigma=0.0)
    target.cpu.coverage = CoverageRecorder()
    source = _random_branchy(random.Random(seed), iterations=8)
    executor = IsaIntermittentExecutor(sim, target, assemble(source))
    executor.run(duration=1.0)
    return sim, target


def test_restore_resets_block_translation_counters():
    """``blocks_translated/executed/deopts`` are per-leg instrumentation,
    not simulated state: a restored device must start counting from
    zero, exactly like a device built fresh for the leg."""
    sim, target = _run_branchy_with_coverage(seed=31)
    assert target.cpu.blocks_executed > 0
    assert target.cpu.blocks_translated > 0

    tracker = DirtyTracker(target.memory)
    snap = capture(target, tracker)
    restore(target, snap, tracker)

    assert target.cpu.blocks_translated == 0
    assert target.cpu.blocks_executed == 0
    assert target.cpu.blocks_deopts == 0


def test_restore_rewinds_coverage_to_the_capture_point():
    """The recorder's ordered entry set is part of the snapshot: records
    made after the capture vanish on restore, and the signature comes
    back bit-identical."""
    sim, target = _run_branchy_with_coverage(seed=47)
    coverage = target.cpu.coverage
    assert len(coverage) >= 2  # entry plus at least one taken transfer

    tracker = DirtyTracker(target.memory)
    snap = capture(target, tracker)
    at_capture = coverage.export_state()
    signature_at_capture = coverage.signature()

    # Later-leg records that must not survive the rewind.
    coverage.record(0xBEE0)
    coverage.record(0xBEE2)
    assert coverage.blocks() != at_capture

    restore(target, snap, tracker)
    assert coverage.blocks() == at_capture
    assert coverage.signature() == signature_at_capture


def test_restore_leaves_coverage_alone_without_a_captured_recorder():
    """A snapshot taken before any recorder existed carries no coverage
    state; restoring it must not clobber a recorder attached later."""
    from repro.mcu.coverage import CoverageRecorder

    sim = Simulator(seed=5)
    target = make_fast_target(sim, distance_m=1.6, fading_sigma=0.0)
    tracker = DirtyTracker(target.memory)
    snap = capture(target, tracker)  # no recorder attached yet

    target.cpu.coverage = CoverageRecorder()
    target.cpu.coverage.record(0xA000)
    restore(target, snap, tracker)

    assert target.cpu.coverage.blocks() == (0xA000,)
