"""Lane engine (``repro.batch``): lane-vs-scalar bit-identity properties.

The batch engine's contract is that it is *invisible* in the records: a
campaign produces byte-identical reports with batching on, off, or
killed via ``REPRO_NO_BATCH=1``.  The tests here pin that contract at
every layer — the vectorized energy twin against the scalar closed
form, the struct-of-arrays snapshot packing against ``DeviceSnapshot``
round trips, and the leader/peel/clone engine against the scalar fork
group on every divergence class the engine can meet (fault-schedule
hits, organic mid-run brown-outs, commit-boundary writes, never-firing
sweeps).
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

np = pytest.importorskip("numpy")

from repro.batch import batching_enabled
from repro.batch.engine import execute_batch_group
from repro.batch.lanes import LaneBuffer
from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.faults import plan_faults
from repro.campaign.forking import _execute_group
from repro.campaign.runner import tier_stats_delta, tier_stats_snapshot
from repro.campaign.scheduler import run_campaign
from repro.mcu.memory import FRAM_BASE, FRAM_SIZE
from repro.power.capacitor import closed_form_step, closed_form_step_lanes
from repro.runtime.checkpoint import fletcher16
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.snapshot import DirtyTracker, capture, restore
from repro.testing import make_fast_target


# -- the vectorized energy twin --------------------------------------------
def test_closed_form_step_lanes_bit_exact_vs_scalar():
    """Every lane of the vectorized step equals the scalar step exactly.

    Bit-for-bit (``==`` on floats), not approximately: the engine's
    byte-identity contract rides on the capacitor trajectories being
    indistinguishable from the scalar path.
    """
    import math

    rng = random.Random(9001)
    for leak in (None, 0.997):
        for _ in range(200):
            v = [rng.uniform(0.0, 3.3) for _ in range(17)]
            dt = rng.uniform(1e-7, 5e-3)
            voc = rng.uniform(0.0, 3.3)
            rs = rng.uniform(100.0, 5000.0)
            net = rng.uniform(-2e-3, 2e-3)
            cap = rng.uniform(1e-6, 1e-4)
            v_inf = voc - net * rs
            exp_charge = math.exp(-dt / (rs * cap))
            out = closed_form_step_lanes(
                np.array(v), dt, voc, v_inf, exp_charge, net, cap, 3.3, leak
            )
            for lane, v0 in enumerate(v):
                want = closed_form_step(
                    v0, dt, voc, v_inf, exp_charge, net, cap, 3.3, leak
                )
                assert float(out[lane]) == want


def test_closed_form_step_lanes_clamps_like_scalar():
    """Clamp edges (floor 0, ceiling max_voltage) match the scalar form."""
    import math

    dt, voc, rs, cap = 1e-3, 3.3, 1000.0, 4.7e-6
    exp_charge = math.exp(-dt / (rs * cap))
    # A huge drain drives below zero; a huge charge drives above max.
    for net, v in ((5.0, 0.5), (-5.0, 3.2)):
        v_inf = voc - net * rs
        out = closed_form_step_lanes(
            np.array([v]), dt, voc, v_inf, exp_charge, net, cap, 3.3, None
        )
        want = closed_form_step(
            v, dt, voc, v_inf, exp_charge, net, cap, 3.3, None
        )
        assert float(out[0]) == want


# -- struct-of-arrays snapshot packing -------------------------------------
def _snapshot_after(seed: int, cycles: int):
    """A (target, tracker, snapshot) triple after some real execution."""
    sim = Simulator(seed=seed)
    sim.trace.enabled = False
    target = make_fast_target(sim, distance_m=1.6, fading_sigma=0.0)
    tracker = DirtyTracker(target.memory)
    target.power.charge_until_on()
    target.execute_cycles(cycles)
    return target, tracker, capture(target, tracker)


def test_lane_buffer_round_trip_is_bit_exact():
    """pack -> unpack returns snapshots equal in every slot.

    Registers, memory bytes, capacitor voltage, clock, and the Mersenne
    RNG words all survive the NumPy round trip; ``restore`` then accepts
    the unpacked snapshot, which re-verifies its integrity CRC.
    """
    snaps = [_snapshot_after(seed, 600)[2] for seed in (1, 2, 3)]
    buffer = LaneBuffer.from_snapshots(snaps)
    for lane, original in enumerate(snaps):
        back = buffer.unpack(lane)
        assert back.cpu_registers == original.cpu_registers
        assert back.memory_pages == original.memory_pages
        assert back.cap_voltage == original.cap_voltage
        assert back.sim_now == original.sim_now
        assert back.rng_states == original.rng_states
        assert back.integrity == original.integrity
    # The unpacked snapshot restores onto a live device (CRC gate).
    target, tracker, snap = _snapshot_after(7, 600)
    clone = LaneBuffer.from_snapshots([snap]).unpack(0)
    target.execute_cycles(128)  # diverge, then roll back
    restore(target, clone, tracker)
    assert capture(target, tracker).cpu_registers == snap.cpu_registers


def test_lane_buffer_broadcast_shares_one_snapshot():
    """broadcast(snap, n) unpacks n bit-identical copies of one prefix."""
    _, _, snap = _snapshot_after(5, 400)
    buffer = snap.broadcast(4)
    for lane in range(4):
        back = buffer.unpack(lane)
        assert back.memory_pages == snap.memory_pages
        assert back.cpu_registers == snap.cpu_registers
        assert back.rng_states == snap.rng_states


def test_lane_buffer_rejects_mismatched_topology():
    _, _, a = _snapshot_after(1, 300)
    b = dataclasses.replace  # not a dataclass; mutate a copy instead
    b = LaneBuffer.from_snapshots([a]).unpack(0)
    b.cpu_registers = a.cpu_registers[:-1]
    with pytest.raises(ValueError):
        LaneBuffer.from_snapshots([a, b])


# -- the leader/peel/clone engine vs the scalar fork group -----------------
@pytest.fixture
def batch_on(monkeypatch):
    """Force the lane engine live even under an ambient REPRO_NO_BATCH.

    The differential tests compare the engine *against* the scalar
    path, so running them with batching killed would compare the scalar
    path to itself; CI's ``REPRO_NO_BATCH=1`` tier-1 pass still
    exercises this file's scalar-only tests.
    """
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)


class ChecksumAdapter:
    """rfid_firmware with FRAM checksums folded into every observation.

    Wrapping the observation makes the differential tests sensitive to
    *any* end-state memory divergence between the lane engine and the
    scalar path, not just the handful of words the stock adapter reads.
    """

    name = "rfid_firmware"
    invariant_keys = ("drift_ok",)
    requires_stimulus = True

    def __init__(self):
        self._inner = get_adapter("rfid_firmware")

    def build(self, protect, iterations):
        return self._inner.build(protect, iterations)

    def state_ranges(self, program, api):
        return self._inner.state_ranges(program, api)

    def observe(self, program, api):
        out = self._inner.observe(program, api)
        device = api.device
        out["fram_fletcher16"] = fletcher16(
            device.memory.read_bytes(FRAM_BASE, FRAM_SIZE)
        )
        out["reboot_count"] = device.reboot_count
        # Fork-eligible legs consume zero randomness (the honesty
        # invariant); assert it here so a draw sneaking into either
        # path shows up as a record difference, not silent luck.
        out["rng_untouched"] = device.sim.rng.untouched
        return out


def _members(config: CampaignConfig, count: int, duty=None):
    """The first ``count`` member tuples exactly as execute_chunk builds them."""
    members = []
    for index in range(count):
        run_seed = derive_seed(config.seed, "run", index)
        plan = plan_faults(
            config, random.Random(derive_seed(run_seed, "plan"))
        )
        if duty is not None:
            plan = dataclasses.replace(plan, duty=duty)
        members.append((index, run_seed, plan))
    return members


def _records_json(records: dict) -> str:
    return json.dumps(
        {str(k): records[k] for k in sorted(records)}, sort_keys=True
    )


def _differential(config: CampaignConfig, duty=None, count=6):
    """Assert batch == scalar for one group; return the lane counters."""
    adapter = ChecksumAdapter()
    members = _members(config, count, duty=duty)
    before = tier_stats_snapshot()
    batched = execute_batch_group(config, adapter, members)
    lanes = tier_stats_delta(before)
    assert batched is not None, "engine fell back unexpectedly"
    scalar = _execute_group(config, adapter, members)
    assert _records_json(batched) == _records_json(scalar)
    return lanes


def _opsweep_config(**overrides) -> CampaignConfig:
    base = dict(
        app="rfid_firmware", runs=8, seed=777, workers=1,
        duration=0.4, modes=("op_index",),
        distance_range=(2.0, 2.0), fading_range=(0.0, 0.0),
        duty_chance=0.0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def test_differential_fault_schedule_peel(batch_on):
    """Schedules that fire mid-run peel; records still match bit-for-bit.

    Low op indices guarantee every lane's injection lands inside the
    executed window — the pure-peel regime, where the engine's replay
    must reproduce the scalar leg exactly (checksums, reboot
    boundaries, observations).
    """
    lanes = _differential(_opsweep_config(min_ops=5, max_ops=400))
    assert lanes["lanes_packed"] == 6
    assert lanes["lanes_peeled"] > 0


def test_differential_never_firing_sweep_clones(batch_on):
    """Schedules sweeping past the executed window clone the leader."""
    lanes = _differential(
        _opsweep_config(min_ops=20_000, max_ops=90_000)
    )
    assert lanes["lanes_packed"] == 6
    assert lanes["lanes_peeled"] == 0  # pure clones


def test_differential_organic_brownout_spans(batch_on):
    """Mid-block organic brown-outs pause the leader at lane boundaries.

    A heavy workload at a marginal distance drains the capacitor
    mid-run, so the leader crosses several charge/discharge boundaries;
    peels must replay from the correct boundary snapshot (mid-block
    brown-out class) and clones must still match the scalar leg.
    """
    lanes = _differential(
        _opsweep_config(
            duration=1.0, iterations=600,
            distance_range=(6.8, 6.8),
            min_ops=200, max_ops=20_000,
        )
    )
    assert lanes["batch_spans"] > 0


def test_differential_duty_cycle_group(batch_on):
    """Lanes sharing a duty-cycled environment stay bit-identical."""
    _differential(
        _opsweep_config(min_ops=50, max_ops=2_000), duty=(0.008, 0.6)
    )


def test_differential_commit_boundary_writes(batch_on):
    """commit_boundary mode: the write counter drives peel decisions."""
    lanes = _differential(
        _opsweep_config(modes=("commit_boundary",), min_ops=5, max_ops=400)
    )
    assert lanes["lanes_packed"] == 6


def test_differential_self_modifying_shared_block(batch_on):
    """The ISA firmware writes FRAM the translated blocks read.

    rfid_firmware's counters live in FRAM inside the translated
    region, so a peeled lane's replay re-executes writes that the
    leader also performed — the restore path must roll the shared
    memory image back exactly (the checksummed observation proves it).
    """
    lanes = _differential(
        _opsweep_config(
            modes=("commit_boundary",), iterations=200,
            min_ops=2, max_ops=40,
        )
    )
    assert lanes["lanes_peeled"] > 0


# -- campaign-level byte identity ------------------------------------------
@pytest.mark.batch_smoke
def test_campaign_report_identical_batch_on_off_killed(monkeypatch):
    """One campaign, three execution modes, one set of report bytes."""
    config = CampaignConfig(
        app="rfid_firmware", runs=8, seed=2468, workers=1,
        duration=0.4, modes=("op_index", "commit_boundary"),
        distance_range=(1.8, 1.8), fading_range=(0.0, 0.0),
        duty_chance=0.0, shrink=False,
    )
    stats = {}
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    on = json.dumps(
        run_campaign(config, batch=True, stats=stats), sort_keys=True
    )
    off = json.dumps(run_campaign(config, batch=False), sort_keys=True)
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    killed_stats = {}
    killed = json.dumps(
        run_campaign(config, batch=True, stats=killed_stats), sort_keys=True
    )
    assert on == off == killed
    assert stats["lanes_packed"] > 0, "batch path never engaged"
    assert killed_stats["lanes_packed"] == 0, "kill switch ignored"


def test_batching_disabled_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    assert batching_enabled()
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    assert not batching_enabled()
    monkeypatch.setenv("REPRO_NO_BATCH", "0")
    assert batching_enabled()


def test_parallel_campaign_aggregates_worker_stats(batch_on):
    """Pool workers' tier/lane tallies reach the stats sink.

    Until the chunk workers reported deltas, the CLI's tier summary was
    silently empty under ``--workers > 1``; this pins the aggregation
    path end to end (and that the counters stay out of the report).
    """
    config = CampaignConfig(
        app="rfid_firmware", runs=8, seed=99, workers=2, chunk=4,
        duration=0.4, modes=("op_index",),
        distance_range=(1.8, 1.8), fading_range=(0.0, 0.0),
        duty_chance=0.0, shrink=False,
    )
    stats = {}
    report = run_campaign(config, stats=stats)
    assert stats["blocks_executed"] > 0
    assert stats["lanes_packed"] > 0
    assert "stats" not in report
    assert "tier" not in json.dumps(report)
