"""Tests for the §4.1.2 Vreg-tracking level-shifter bank."""

import pytest

from repro import Simulator, make_wisp_power_system
from repro.analog.tracking import LevelShifterBank
from repro.sim import units
from repro.sim.rng import RngHub


def _power(sim, voltage):
    power = make_wisp_power_system(sim, initial_voltage=voltage)
    power.source.enabled = False
    power.capacitor.voltage = voltage
    return power


class TestTrackedBank:
    def test_reference_follows_vreg_in_regulation(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=True)
        assert bank.reference_voltage() == pytest.approx(2.0, abs=0.01)

    def test_reference_follows_vreg_in_dropout(self, sim):
        """The §4.1.2 case: Vreg sags during a power failure."""
        power = _power(sim, 1.9)  # dropout: Vreg = 1.8
        bank = LevelShifterBank(sim.rng, power, tracked=True)
        assert bank.reference_voltage() == pytest.approx(1.8, abs=0.01)

    def test_mismatch_stays_within_window_everywhere(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=True)
        bank.drive("debugger_to_target_comm", True)
        for voltage in (2.4, 2.2, 2.0, 1.9, 1.85):
            power.capacitor.voltage = voltage
            assert abs(bank.mismatch("debugger_to_target_comm")) <= 0.3

    def test_no_protection_current_during_sag(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=True)
        bank.drive("debugger_to_target_comm", True)
        power.capacitor.voltage = 1.85  # deep in dropout
        assert bank.protection_current() == 0.0


class TestNaiveBank:
    def test_fine_while_target_in_regulation(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=False)
        bank.drive("debugger_to_target_comm", True)
        assert bank.protection_current() == 0.0

    def test_injects_microamps_when_rail_sags(self, sim):
        """The failure EDB's tracking circuit exists to prevent."""
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=False)
        bank.drive("debugger_to_target_comm", True)
        power.capacitor.voltage = 1.6  # target browning out; Vreg ~1.5
        current = bank.protection_current()
        assert current > 100 * units.UA  # catastrophic vs nanoamp budget

    def test_low_lines_are_harmless(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=False)
        power.capacitor.voltage = 1.6
        assert bank.protection_current() == 0.0  # nothing driven high

    def test_apply_interference_feeds_the_supply(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power, tracked=False)
        bank.drive("debugger_to_target_comm", True)
        power.capacitor.voltage = 1.6
        injected = bank.apply_interference()
        assert injected > 0.0
        assert power.injected_current == pytest.approx(injected)

    def test_interference_perturbs_the_energy_state(self, sim):
        """End-to-end: the naive bank visibly charges a dying target."""
        power = _power(sim, 1.6)
        bank = LevelShifterBank(sim.rng, power, tracked=False)
        bank.drive("debugger_to_target_comm", True)
        bank.apply_interference()
        v0 = power.vcap
        sim.advance(0.05)
        power.idle_step(0.05)
        assert power.vcap > v0 + 0.01  # the diodes are charging the cap


class TestBankApi:
    def test_unknown_line_rejected(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(sim.rng, power)
        with pytest.raises(KeyError):
            bank.drive("nonexistent", True)

    def test_multiple_lines_sum(self, sim):
        power = _power(sim, 2.4)
        bank = LevelShifterBank(
            sim.rng, power, lines=["a", "b"], tracked=False
        )
        bank.drive("a", True)
        bank.drive("b", True)
        power.capacitor.voltage = 1.6
        two = bank.protection_current()
        bank.drive("b", False)
        one = bank.protection_current()
        assert two == pytest.approx(2 * one, rel=0.01)
