"""Unit tests for the host debug console (Table 1's command set)."""

import pytest

from repro import EDB, IntermittentExecutor, Simulator, TargetDevice
from repro import make_wisp_power_system
from repro.core.console import DebugConsole
from repro.mcu.hlapi import DeviceAPI
from repro.mcu.memory import FRAM_BASE


@pytest.fixture
def console_rig(sim):
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    edb.libedb()  # link the target-side library (memory access needs it)
    power.charge_until_on()
    console = DebugConsole(edb)
    return device, edb, console


class TestEnergyCommands:
    def test_charge(self, console_rig):
        device, _, console = console_rig
        out = console.execute("discharge 2.0")
        assert "discharged" in out
        out = console.execute("charge 2.4")
        assert "charged" in out
        assert device.power.vcap >= 2.39

    def test_charge_validates_voltage(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("charge 9.9")
        assert "error" in console.execute("charge")


class TestBreakCommands:
    def test_break_en_arms_code_breakpoint(self, console_rig):
        _, edb, console = console_rig
        out = console.execute("break en 3")
        assert "armed" in out
        assert edb.breakpoints.check_code_point(3, vcap=2.4) is not None

    def test_break_en_with_energy_arms_combined(self, console_rig):
        _, edb, console = console_rig
        console.execute("break en 3 2.0")
        assert edb.breakpoints.check_code_point(3, vcap=2.4) is None
        assert edb.breakpoints.check_code_point(3, vcap=1.9) is not None

    def test_break_dis(self, console_rig):
        _, edb, console = console_rig
        console.execute("break en 3")
        out = console.execute("break dis 3")
        assert "disabled 1" in out
        assert edb.breakpoints.check_code_point(3, vcap=2.4) is None

    def test_break_energy(self, console_rig):
        _, edb, console = console_rig
        out = console.execute("break energy 2.1")
        assert "armed" in out
        assert edb.breakpoints.check_energy(2.0) is not None

    def test_break_bad_syntax(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("break")
        assert "error" in console.execute("break maybe 3")


class TestWatchTraceCommands:
    def test_watch_dis_and_en(self, console_rig):
        _, edb, console = console_rig
        console.execute("watch dis 2")
        assert 2 in edb.monitor.disabled_watchpoints
        console.execute("watch en 2")
        assert 2 not in edb.monitor.disabled_watchpoints

    def test_trace_enables_stream(self, console_rig):
        _, edb, console = console_rig
        console.execute("trace energy")
        assert "energy" in edb.monitor.enabled

    def test_trace_unknown_stream(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("trace everything")


class TestMemoryCommands:
    def test_write_then_read(self, console_rig):
        device, _, console = console_rig
        address = FRAM_BASE + 0x100
        console.execute(f"write 0x{address:04X} 0xBEEF")
        out = console.execute(f"read 0x{address:04X} 2")
        assert "ef be" in out  # little-endian dump

    def test_read_restores_power_state(self, console_rig):
        device, _, console = console_rig
        v0 = device.power.vcap
        console.execute(f"read 0x{FRAM_BASE:04X} 4")
        assert not device.power.is_tethered
        assert device.power.vcap == pytest.approx(v0, abs=0.15)

    def test_read_bad_args(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("read")
        assert "error" in console.execute("read zz 2")


class TestRunAndStatus:
    def test_run_requires_bound_program(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("run 0.1")

    def test_run_with_executor(self, sim):
        from repro.apps import FibonacciApp

        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        app = FibonacciApp(debug_build=False, capacity=40)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        console = DebugConsole(edb, executor=executor)
        out = console.execute("run 2.0")
        assert "run finished" in out

    def test_status_reports_voltages(self, console_rig):
        _, _, console = console_rig
        out = console.execute("status")
        assert "Vcap" in out
        assert "reboots" in out

    def test_wp_empty(self, console_rig):
        _, _, console = console_rig
        assert "no watchpoint hits" in console.execute("wp")

    def test_wp_lists_stats(self, console_rig):
        device, edb, console = console_rig
        DeviceAPI(device, edb=edb.libedb()).edb_watchpoint(1)
        out = console.execute("wp")
        assert "watchpoint 1: 1 hits" in out

    def test_printf_log(self, console_rig):
        device, edb, console = console_rig
        assert "no printf output" in console.execute("printf")
        DeviceAPI(device, edb=edb.libedb()).edb_printf("trace me")
        assert "trace me" in console.execute("printf")


class TestDispatch:
    def test_unknown_command(self, console_rig):
        _, _, console = console_rig
        assert "unknown command" in console.execute("frobnicate")

    def test_blank_and_comment_lines_ignored(self, console_rig):
        _, _, console = console_rig
        assert console.execute("") == ""
        assert console.execute("# comment") == ""

    def test_help_lists_commands(self, console_rig):
        _, _, console = console_rig
        out = console.execute("help")
        assert "charge" in out

    def test_live_break_handler_announces(self, console_rig):
        device, edb, console = console_rig
        api = DeviceAPI(device, edb=edb.libedb())
        edb.break_at(5)
        console.execute("# arm")
        api.edb_breakpoint(5)
        assert any("target stopped" in line for line in console.history)

    def test_repl_quits(self, console_rig):
        _, _, console = console_rig
        lines = iter(["status", "quit"])
        console.repl(input_fn=lambda prompt: next(lines))
        assert any("Vcap" in line for line in console.history)


class TestExtendedCommands:
    def test_interference_summary(self, console_rig):
        _, _, console = console_rig
        out = console.execute("interference")
        assert "worst-case interference" in out
        assert "nA" in out

    def test_profile_without_hits(self, console_rig):
        _, _, console = console_rig
        out = console.execute("profile 1 2")
        assert "no complete occurrences" in out

    def test_profile_with_hits(self, console_rig):
        device, edb, console = console_rig
        api = DeviceAPI(device, edb=edb.libedb())
        device.power.source.enabled = False
        for _ in range(3):
            api.edb_watchpoint(1)
            api.compute(30_000)
            api.edb_watchpoint(2)
        out = console.execute("profile 1 2")
        assert "energy median" in out
        assert "uJ |" in out  # the histogram

    def test_profile_bad_args(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("profile")
        assert "error" in console.execute("profile a b")

    def test_emulate_requires_program(self, console_rig):
        _, _, console = console_rig
        assert "error" in console.execute("emulate 2")

    def test_emulate_runs_cycles(self, sim):
        from repro.apps import FibonacciApp

        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        app = FibonacciApp(debug_build=False, capacity=5000)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        console = DebugConsole(edb, executor=executor)
        out = console.execute("emulate 3")
        assert "emulated 3 cycle(s)" in out
        assert "brownouts=3" in out
