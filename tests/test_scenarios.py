"""End-to-end debugging scenarios: feature interactions under load.

These integration tests exercise the combinations a real debugging
session produces — asserts firing inside energy guards, printf inside
guards, breakpoint sessions that patch program state, console-driven
workflows against live intermittent applications, and ground-truth
validation of the AR pipeline.
"""

import pytest

from repro import (
    EDB,
    IntermittentExecutor,
    RunStatus,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import ActivityRecognitionApp, FibonacciApp
from repro.apps.sensors import (
    Accelerometer,
    I2C_ADDRESS,
    MotionProfile,
    MotionSegment,
)
from repro.core.console import DebugConsole
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.executor import AssertionHaltSignal
from repro.runtime.nonvolatile import NVCounter
from repro.testing import make_fast_target


@pytest.fixture
def rig(sim):
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    power.charge_until_on()
    api = DeviceAPI(device, edb=edb.libedb())
    return device, edb, api


class TestAssertInsideGuard:
    def test_keep_alive_survives_guard_unwind(self, rig):
        """The interaction bug: an assert inside an energy guard must
        leave the target tethered after the guard's exit path runs."""
        device, edb, api = rig
        with pytest.raises(AssertionHaltSignal):
            with api.edb_energy_guard():
                api.compute(1000)
                api.edb_assert(False, "fired inside a guard")
        assert device.power.is_tethered  # keep-alive held through unwind
        edb.release()
        assert not device.power.is_tethered

    def test_session_usable_after_in_guard_assert(self, rig):
        device, edb, api = rig
        address = api.nv_var("evidence")
        api.store_u16(address, 0x1234)
        seen = {}
        edb.on_assert(lambda e, s: seen.update(value=s.read_u16(address)))
        with pytest.raises(AssertionHaltSignal):
            with api.edb_energy_guard():
                api.edb_assert(False, "inspect")
        assert seen["value"] == 0x1234
        edb.release()

    def test_guard_still_restores_when_no_assert(self, rig):
        device, edb, api = rig
        v0 = device.power.vcap
        with api.edb_energy_guard():
            api.compute(100_000)
        assert not device.power.is_tethered
        assert abs(device.power.vcap - v0) < 0.02


class TestPrintfInsideGuard:
    def test_nested_bracket_counts_one_restore(self, rig):
        device, edb, api = rig
        before = len(edb.save_restore_records)
        with api.edb_energy_guard():
            api.edb_printf("from inside a guard")
            api.compute(1000)
        assert edb.printf_output[-1][1] == "from inside a guard"
        # One outer restore; the printf's bracket was nested.
        assert len(edb.save_restore_records) == before + 1

    def test_watchpoints_inside_guard_recorded(self, rig):
        device, edb, api = rig
        with api.edb_energy_guard():
            api.edb_watchpoint(3)
        assert edb.monitor.watchpoint_stats(3).hits == 1


class TestBreakpointPatching:
    def test_session_patch_changes_program_outcome(self, sim):
        """Interactive write actually steers the running program."""

        class ThresholdApp:
            name = "threshold"

            def flash(self, api):
                api.device.memory.write_u16(api.nv_var("limit"), 50)
                api.device.memory.write_u16(api.nv_var("counter.n"), 0)

            def main(self, api):
                counter = NVCounter(api, "n")
                limit_addr = api.nv_var("limit")
                while True:
                    value = counter.increment()
                    api.edb_breakpoint(1)
                    api.compute(300)
                    if value >= api.load_u16(limit_addr):
                        raise ProgramComplete(value)

        device = make_fast_target(sim)
        edb = EDB(sim, device)
        app = ThresholdApp()
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        executor.flash()
        limit_addr = executor.api.nv_var("limit")
        bp = edb.break_at(1, one_shot=True)

        def patch(event, session):
            session.write_u16(limit_addr, 10)  # lower the bar live

        edb.on_break(patch)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED
        assert result.detail == 10  # the patched limit took effect

    def test_combined_breakpoint_fires_in_low_energy_iterations_only(
        self, sim
    ):
        device = make_fast_target(sim)
        edb = EDB(sim, device)

        class LoopApp:
            name = "loop"

            def main(self, api):
                while True:
                    api.edb_breakpoint(2)
                    api.compute(2000)

        edb.break_combined(2, threshold_v=2.0)
        hits = []
        edb.on_break(lambda e, s: hits.append(e.vcap))
        executor = IntermittentExecutor(
            sim, device, LoopApp(), edb=edb.libedb()
        )
        executor.run(duration=0.5)
        assert hits  # it did fire...
        assert all(v <= 2.0 for v in hits)  # ...only below the threshold


class TestConsoleDrivenWorkflow:
    def test_full_session_against_live_app(self, sim):
        power = make_wisp_power_system(sim, distance_m=1.6)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        app = FibonacciApp(debug_build=False, capacity=600)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        console = DebugConsole(edb, executor=executor)

        console.execute("trace energy")
        out = console.execute("run 1.0")
        assert "run finished: timeout" in out
        # The list grew; read its header over the debug link.
        alloc_addr = executor.api.nv_var("fib.alloc")
        out = console.execute(f"read 0x{alloc_addr:04X} 2")
        assert "0x" in out
        alloc = device.memory.read_u16(alloc_addr)
        assert alloc > 10
        # Energy stream captured the sawtooth.
        times, vcaps = edb.monitor.energy_series()
        assert max(vcaps) > 2.35
        assert min(vcaps) < 1.95

    def test_console_energy_manipulation_roundtrip(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        edb.libedb()
        console = DebugConsole(edb)
        console.execute("charge 2.4")
        assert device.power.vcap >= 2.39
        console.execute("discharge 1.9")
        assert device.power.vcap <= 1.91


class TestActivityGroundTruth:
    def test_classifier_accuracy_against_schedule(self, sim):
        """The AR pipeline gets the ground truth mostly right."""
        device = make_fast_target(sim)
        profile = MotionProfile(
            [MotionSegment(False, 0.4), MotionSegment(True, 0.4)]
        )
        accel = Accelerometer(sim, profile)
        device.i2c.attach(I2C_ADDRESS, accel)
        edb = EDB(sim, device)
        edb.trace("watchpoints")

        truth: list[bool] = []

        class TruthTap(ActivityRecognitionApp):
            def _read_window(self, api):
                truth.append(profile.is_moving(api.device.sim.now))
                return super()._read_window(api)

        app = TruthTap(output="none", max_iterations=120)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        result = executor.run(duration=30.0)
        assert result.status is RunStatus.COMPLETED
        wp2 = edb.monitor.watchpoint_stats(2).hits  # stationary path
        wp3 = edb.monitor.watchpoint_stats(3).hits  # moving path
        moving_truth = sum(truth) / len(truth)
        measured = wp3 / max(1, wp2 + wp3)
        # Within 25 percentage points of ground truth occupancy.
        assert abs(measured - moving_truth) < 0.25

    def test_watchpoint_counts_cross_check_nv_stats(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.stationary())
        )
        edb = EDB(sim, device)
        edb.trace("watchpoints")
        app = ActivityRecognitionApp(output="none", max_iterations=50)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        executor.run(duration=20.0)
        stats = ActivityRecognitionApp.read_stats(executor.api)
        wp_total = (
            edb.monitor.watchpoint_stats(2).hits
            + edb.monitor.watchpoint_stats(3).hits
        )
        # External trace and NV stats agree to within the iterations
        # cut by reboots between the counter update and the marker.
        assert abs(wp_total - stats["total"]) <= executor.api.device.reboot_count


class TestEmulatorWithEdbPrimitives:
    def test_assert_fires_under_emulated_intermittence(self, sim):
        from repro.apps import LinkedListApp
        from repro.core.emulation import IntermittenceEmulator

        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        app = LinkedListApp(use_assert=True, update_cycles=0)
        emulator = IntermittenceEmulator(edb, app)
        levels = [2.4 + 0.004 * (i % 40) for i in range(200)]
        result = emulator.run(cycles=200, turn_on_voltage=levels)
        assert result.outcome == "assert"
        assert device.power.is_tethered
        edb.release()
