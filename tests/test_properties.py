"""Property-based tests of the system's core invariants.

These are the "for any schedule" guarantees the design rests on:

- control loops converge with bounded error for any setpoint;
- the repair-on-boot list is consistent after a brown-out at *any*
  operation of *any* workload (exhaustive-ish via hypothesis);
- the task runtime conserves its invariants across failures injected
  at arbitrary points;
- the protocol decoder survives arbitrary corruption;
- intermittent progress counters never move backwards.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Simulator, TargetDevice, make_wisp_power_system
from repro.analog.charge_circuit import ChargeDischargeCircuit
from repro.core.protocol import Decoder, Message, encode
from repro.mcu.adc import Adc
from repro.mcu.device import PowerFailure
from repro.mcu.hlapi import DeviceAPI
from repro.mcu.memory import FRAM_BASE
from repro.runtime.checkpoint import (
    _CKSUM_OFF,
    _STACK_OFF,
    SLOT_SIZE,
    CheckpointManager,
)
from repro.runtime.nonvolatile import SafeNVLinkedList
from repro.runtime.tasks import Task, TaskRuntime
from repro.sim import units
from repro.testing import BrownoutInjector


def _charged_device(seed=1, voltage=2.2):
    sim = Simulator(seed=seed)
    power = make_wisp_power_system(sim, initial_voltage=voltage)
    power.source.enabled = False
    device = TargetDevice(sim, power)
    power.capacitor.voltage = voltage
    power.reset_comparator()
    return sim, device


class TestControlLoopConvergence:
    @given(
        start=st.floats(1.9, 3.1),
        target=st.floats(1.9, 3.1),
    )
    @settings(max_examples=40, deadline=None)
    def test_restore_converges_from_anywhere(self, start, target):
        sim = Simulator(seed=5)
        power = make_wisp_power_system(sim, initial_voltage=start)
        power.source.enabled = False
        power.capacitor.voltage = start
        adc = Adc(rng=sim.rng, noise_sigma_v=0.5 * units.MV, stream="edb-adc")
        circuit = ChargeDischargeCircuit(sim, power, adc)
        circuit.restore_to(target)
        # Bounded error: a few mV low (discharge trim) up to the filter
        # dump high (charge trim), never runaway.
        assert target - 0.02 <= power.vcap <= target + 0.15

    @given(target=st.floats(1.9, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_discharge_never_overshoots_down(self, target):
        sim = Simulator(seed=5)
        power = make_wisp_power_system(sim, initial_voltage=3.2)
        power.source.enabled = False
        power.capacitor.voltage = 3.2
        adc = Adc(rng=sim.rng, noise_sigma_v=0.5 * units.MV, stream="edb-adc")
        circuit = ChargeDischargeCircuit(sim, power, adc)
        circuit.discharge_to(target)
        assert target - 0.02 <= power.vcap <= target + 0.005


class TestSafeListCrashConsistency:
    @given(
        ops=st.lists(st.sampled_from(["append", "remove"]), min_size=1, max_size=8),
        fail_at=st.integers(1, 120),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_repair_heals_any_interruption_point(self, ops, fail_at):
        """Run a random workload, kill it at a random op, repair, check."""
        sim, device = _charged_device(voltage=2.4)
        api = DeviceAPI(device)
        nv_list = SafeNVLinkedList(api, "p", capacity=8)
        nv_list.init()
        injector = BrownoutInjector(device)
        injector.arm(fail_at)
        free = list(range(8))
        live: list[int] = []
        try:
            for op in ops:
                if op == "append" and free:
                    index = free.pop()
                    nv_list.append(nv_list.node_address(index))
                    live.append(index)
                elif op == "remove" and live:
                    index = live.pop(0)
                    nv_list.remove(nv_list.node_address(index))
                    free.append(index)
        except PowerFailure:
            pass
        # Reboot: volatile gone, FRAM (the list) retained.  The pending
        # injection (if it never fired) dies with the power failure.
        injector.disarm()
        device.power.capacitor.voltage = 2.4
        device.power.reset_comparator()
        device.reboot()
        nv_list.repair()
        assert nv_list.check_consistency()
        # The healed chain's membership is a subset of the nodes ever
        # linked, with no duplicates.
        chain = nv_list.walk()
        assert len(chain) == len(set(chain))


class TestTaskInvariantConservation:
    @given(fail_points=st.lists(st.integers(2, 90), min_size=1, max_size=6))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_transfer_conserves_total(self, fail_points):
        sim, device = _charged_device(voltage=2.4)
        api = DeviceAPI(device)

        def debit(api_, rt):
            rt.set("a", (rt.get("a") - 1) & 0xFFFF)
            rt.set("b", (rt.get("b") + 1) & 0xFFFF)

        runtime = TaskRuntime(api, [Task("debit", debit)], ["a", "b"], name="h")
        runtime.flash_init({"a": 500, "b": 0})
        injector = BrownoutInjector(device)
        for point in fail_points:
            injector.arm(point)
            try:
                runtime.recover()
                runtime.run_one_task()
            except PowerFailure:
                pass
            device.power.capacitor.voltage = 2.4
            device.power.reset_comparator()
            injector.disarm()
        runtime.recover()
        total = runtime.read_committed("a") + runtime.read_committed("b")
        assert total == 500


class TestDecoderRobustness:
    @given(
        texts=st.lists(st.text(max_size=20), min_size=1, max_size=5),
        flips=st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 7)), max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_raises_on_corruption(self, texts, flips):
        stream = bytearray(
            b"".join(encode(Message.printf(t)) for t in texts)
        )
        for position, bit in flips:
            if stream:
                stream[position % len(stream)] ^= 1 << bit
        decoder = Decoder()
        messages = decoder.feed(bytes(stream))  # must not raise
        assert len(messages) <= len(texts) + len(flips)

    @given(garbage=st.binary(max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_pure_garbage_yields_no_phantom_floods(self, garbage):
        decoder = Decoder()
        messages = decoder.feed(garbage)
        # Checksummed framing keeps accidental decodes very rare.
        assert len(messages) <= max(1, len(garbage) // 8)


class TestProgressMonotonicity:
    @given(durations=st.lists(st.floats(0.01, 0.3), min_size=2, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_nv_counter_never_decreases(self, durations):
        from repro import IntermittentExecutor
        from repro.runtime.nonvolatile import NVCounter
        from repro.testing import make_fast_target

        class App:
            name = "mono"

            def flash(self, api):
                api.device.memory.write_u16(api.nv_var("counter.n"), 0)

            def main(self, api):
                counter = NVCounter(api, "n")
                while True:
                    counter.increment()
                    api.compute(300)

        sim = Simulator(seed=3)
        device = make_fast_target(sim)
        executor = IntermittentExecutor(sim, device, App())
        last = 0
        for duration in durations:
            executor.run(duration=duration)
            value = device.memory.read_u16(executor.api.nv_var("counter.n"))
            assert value >= last
            last = value


class TestCheckpointCorruptionDetection:
    """Bit-flip properties of the double-buffered checkpoint store.

    The slot image has three regions with different guarantees:

    - the checksummed payload (checksum word, stack count, registers,
      live stack): any single bit flip is *detected* — Fletcher-16
      catches all single-bit errors, and a flipped checksum word fails
      against the recomputed value;
    - the sequence word: NOT covered by the checksum.  A flip there is
      the documented undetected case — it can reorder or empty the
      slot, but the restored context itself is still intact (the
      payload validates), so corruption degrades ordering, never state;
    - the unused stack tail: flips land in bytes no restore reads, so
      they are undetected and harmless by construction.
    """

    BASE = FRAM_BASE + 0x4000

    def _manager(self, stack_words=2, seed=1):
        sim, device = _charged_device(seed=seed, voltage=2.4)
        device.cpu.reset(0xA000)
        for i in range(stack_words):
            device.cpu.sp -= 2
            device.memory.write_u16(device.cpu.sp, 0xBE00 + i)
        manager = CheckpointManager(device, self.BASE)
        manager.erase()
        return device, manager

    @given(
        stack_words=st.integers(0, 8),
        offset=st.integers(0, SLOT_SIZE - 1),
        bit=st.integers(0, 7),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_single_flip_is_detected_or_documented(
        self, stack_words, offset, bit
    ):
        device, manager = self._manager(stack_words)
        info = manager.checkpoint()
        used = _STACK_OFF + info.stack_bytes
        manager.corrupt_bit(0, offset, bit)
        if offset < _CKSUM_OFF:
            # Sequence word: outside the checksum.  Either the flip
            # zeroed it (slot reads as empty) or the slot still
            # validates with a different sequence — ordering corrupted,
            # payload intact.
            if manager.slot_is_valid(0):
                stored = device.memory.read_u16(self.BASE)
                assert stored != info.sequence
        elif offset < used:
            assert not manager.slot_is_valid(0)
        else:
            # Unused tail: never read back, undetected by design.
            assert manager.slot_is_valid(0)

    @given(offset=st.integers(0, SLOT_SIZE - 1), bit=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_corrupt_newest_falls_back_to_older_checkpoint(self, offset, bit):
        device, manager = self._manager(stack_words=2)
        first = manager.checkpoint()
        device.cpu.registers[4] = 0x1234
        second = manager.checkpoint()
        assert second.sequence == first.sequence + 1
        used = _STACK_OFF + second.stack_bytes
        manager.corrupt_bit(1, _CKSUM_OFF + offset % (used - _CKSUM_OFF), bit)
        restored = manager.restore()
        assert restored is not None
        assert restored.sequence == first.sequence
        assert manager.corruptions_detected >= 1

    @given(
        regs=st.lists(
            st.integers(0, 0xFFFF), min_size=12, max_size=12
        ),
        stack_words=st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_restores_exact_context(self, regs, stack_words):
        device, manager = self._manager(stack_words)
        cpu = device.cpu
        for i, value in enumerate(regs):
            cpu.registers[4 + i] = value
        saved_regs = list(cpu.registers)
        saved_sp = cpu.sp
        saved_stack = device.memory.read_bytes(saved_sp, stack_words * 2)
        manager.checkpoint()
        # A reboot clears SRAM and the register file; FRAM survives.
        device.memory.clear_volatile()
        cpu.registers = [0] * len(saved_regs)
        restored = manager.restore()
        assert restored is not None
        assert list(cpu.registers) == saved_regs
        assert device.memory.read_bytes(saved_sp, stack_words * 2) == saved_stack


class TestAdcAccuracy:
    @given(voltage=st.floats(0.0, 3.3))
    @settings(max_examples=100)
    def test_measurement_error_bounded(self, voltage):
        sim = Simulator(seed=8)
        adc = Adc(rng=sim.rng, noise_sigma_v=0.5e-3, stream="x")
        measured = adc.measure(voltage)
        # Quantisation (half an LSB) + 5 sigma of noise.
        assert abs(measured - voltage) < adc.lsb_volts / 2 + 5 * 0.5e-3
