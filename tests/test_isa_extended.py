"""Tests for the extended single-operand ISA instructions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mcu.assembler import assemble
from repro.mcu.cpu import Cpu, Halted
from repro.mcu.isa import FLAG_C, FLAG_N, FLAG_Z
from repro.mcu.memory import make_msp430_memory_map


def run_program(source, max_steps=10_000):
    memory = make_msp430_memory_map()
    cpu = Cpu(memory)
    program = assemble(source)
    memory.write_bytes(program.origin, program.to_bytes())
    cpu.reset(program.entry)
    for _ in range(max_steps):
        try:
            cpu.step()
        except Halted:
            return cpu
    raise AssertionError("program did not halt")


class TestIncDec:
    def test_inc(self):
        cpu = run_program("mov #41, r4\ninc r4\nhalt")
        assert cpu.registers[4] == 42

    def test_inc_wraps_with_carry(self):
        cpu = run_program("mov #0xFFFF, r4\ninc r4\nhalt")
        assert cpu.registers[4] == 0
        assert cpu.flag(FLAG_C)
        assert cpu.flag(FLAG_Z)

    def test_dec(self):
        cpu = run_program("mov #10, r4\ndec r4\nhalt")
        assert cpu.registers[4] == 9

    def test_dec_borrows(self):
        cpu = run_program("mov #0, r4\ndec r4\nhalt")
        assert cpu.registers[4] == 0xFFFF
        assert not cpu.flag(FLAG_C)
        assert cpu.flag(FLAG_N)

    def test_inc_memory_operand(self):
        cpu = run_program("v: .word 5\nstart: inc &v\nhalt")
        memory_value = cpu.memory.read_u16(0xA000)
        assert memory_value == 6


class TestShifts:
    def test_shl_doubles(self):
        cpu = run_program("mov #3, r4\nshl r4\nhalt")
        assert cpu.registers[4] == 6

    def test_shl_msb_to_carry(self):
        cpu = run_program("mov #0x8001, r4\nshl r4\nhalt")
        assert cpu.registers[4] == 0x0002
        assert cpu.flag(FLAG_C)

    def test_shr_halves(self):
        cpu = run_program("mov #8, r4\nshr r4\nhalt")
        assert cpu.registers[4] == 4

    def test_shr_lsb_to_carry(self):
        cpu = run_program("mov #3, r4\nshr r4\nhalt")
        assert cpu.registers[4] == 1
        assert cpu.flag(FLAG_C)

    def test_shift_loop_multiplies_by_16(self):
        cpu = run_program(
            "mov #5, r4\nmov #4, r5\n"
            "loop: shl r4\ndec r5\njnz loop\nhalt"
        )
        assert cpu.registers[4] == 80


class TestSwpbInvBit:
    def test_swpb(self):
        cpu = run_program("mov #0x1234, r4\nswpb r4\nhalt")
        assert cpu.registers[4] == 0x3412

    def test_swpb_twice_is_identity(self):
        cpu = run_program("mov #0xBEEF, r4\nswpb r4\nswpb r4\nhalt")
        assert cpu.registers[4] == 0xBEEF

    def test_inv(self):
        cpu = run_program("mov #0x00FF, r4\ninv r4\nhalt")
        assert cpu.registers[4] == 0xFF00

    def test_bit_sets_flags_without_writing(self):
        cpu = run_program("mov #0b1100, r4\nbit #0b0100, r4\nhalt")
        assert cpu.registers[4] == 0b1100  # unchanged
        assert not cpu.flag(FLAG_Z)

    def test_bit_zero_result(self):
        cpu = run_program("mov #0b1100, r4\nbit #0b0011, r4\nhalt")
        assert cpu.flag(FLAG_Z)


class TestEncodingOfNewOps:
    @given(value=st.integers(0, 0xFFFF))
    def test_swpb_semantics_property(self, value):
        cpu = run_program(f"mov #{value}, r4\nswpb r4\nhalt")
        expected = ((value & 0xFF) << 8) | (value >> 8)
        assert cpu.registers[4] == expected

    @given(value=st.integers(0, 0xFFFF))
    def test_shl_shr_relationship(self, value):
        cpu = run_program(f"mov #{value}, r4\nshl r4\nshr r4\nhalt")
        # Shifting left then right clears the MSB.
        assert cpu.registers[4] == (value << 1 & 0xFFFF) >> 1

    @given(value=st.integers(0, 0xFFFF))
    def test_inv_is_involution(self, value):
        cpu = run_program(f"mov #{value}, r4\ninv r4\ninv r4\nhalt")
        assert cpu.registers[4] == value
