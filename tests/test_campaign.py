"""The fault-injection campaign engine: determinism, oracle, shrinking.

Covers the campaign stack bottom-up: the injectors place failures where
they were told to, the oracle never flags continuous-vs-continuous or
protected executions, the shrinker reduces planted divergences to a
minimal reboot schedule, and a whole campaign is byte-identical for
identical seeds regardless of worker count.  The Figure 3 regression
runs the paper's linked-list bug through the full engine: the naive
build must diverge, the repair-on-boot build must not.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CommitBoundaryTrigger,
    EnergyLevelTrigger,
    Observation,
    RebootRecorder,
    ScheduledBrownouts,
    compare,
    ddmin,
    execute_run,
    get_adapter,
    plan_faults,
    render_json,
    run_campaign,
    run_continuous_leg,
    shrink_schedule,
    verdict_for_schedule,
)
from repro.campaign.cli import main as campaign_main
from repro.campaign.faults import StateCorruptor
from repro.mcu.memory import FRAM_BASE, SRAM_BASE
from repro.runtime.executor import IntermittentExecutor, RunStatus
from repro.sim.kernel import Simulator
from repro.testing import make_bench_target


class TestConfig:
    def test_round_trips_through_dict(self):
        config = CampaignConfig(app="fibonacci", runs=7, seed=99, workers=3,
                                modes=("op_index", "organic"))
        assert CampaignConfig.from_dict(config.to_dict()) == config

    def test_dict_form_is_json_serializable(self):
        as_json = json.dumps(CampaignConfig().to_dict())
        assert CampaignConfig.from_dict(json.loads(as_json)) == CampaignConfig()

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault modes"):
            CampaignConfig(modes=("telepathy",))

    def test_rejects_unknown_config_key(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            CampaignConfig.from_dict({"runz": 5})

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            CampaignConfig(min_reboots=5, max_reboots=2)
        with pytest.raises(ValueError):
            CampaignConfig(runs=-1)
        with pytest.raises(ValueError):
            CampaignConfig(max_cycles=-1)
        with pytest.raises(ValueError):
            CampaignConfig(max_retries=0)


class _OpCounter:
    """Workload of bare compute ops; completes after ``total`` of them."""

    name = "op-counter"

    def __init__(self, total=10_000):
        self.total = total

    def main(self, api):
        from repro.mcu.hlapi import ProgramComplete

        addr = api.nv_var("opc.done")
        while True:
            done = api.load_u16(addr)
            api.branch()
            if done >= self.total:
                raise ProgramComplete(done)
            api.compute(50)
            api.store_u16(addr, done + 1)


class TestInjectors:
    def _bench(self):
        sim = Simulator(seed=3)
        device = make_bench_target(sim)
        return sim, device

    def test_scheduled_brownouts_hit_exact_op_counts(self):
        sim, device = self._bench()
        executor = IntermittentExecutor(sim, device, _OpCounter(total=400))
        executor.flash()
        recorder = RebootRecorder(device)
        injector = ScheduledBrownouts(device, [37, 121, 64])
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        assert injector.injections == 3
        assert recorder.schedule() == [37, 121, 64]

    def test_scheduled_brownouts_beyond_completion_never_fire(self):
        sim, device = self._bench()
        executor = IntermittentExecutor(sim, device, _OpCounter(total=50))
        injector = ScheduledBrownouts(device, [10_000])
        executor.flash()
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        assert injector.injections == 0

    def test_energy_level_trigger_fires_below_each_level(self):
        sim = Simulator(seed=3)
        from repro.testing import make_fast_target

        device = make_fast_target(sim, distance_m=1.4, fading_sigma=0.0)
        executor = IntermittentExecutor(sim, device, _OpCounter(total=3000))
        executor.flash()
        injector = EnergyLevelTrigger(device, [2.3, 2.1])
        result = executor.run(duration=3.0)
        assert injector.injections == 2
        assert result.reboots >= 2

    def test_commit_boundary_trigger_counts_only_fram_writes(self):
        sim, device = self._bench()
        trigger = CommitBoundaryTrigger(device, [2])
        device.memory.write_u16(SRAM_BASE + 8, 1)  # volatile: not counted
        assert trigger.writes_seen == 0
        device.memory.write_u16(FRAM_BASE + 8, 1)
        device.memory.write_u16(FRAM_BASE + 10, 2)  # second FRAM write: fire
        assert trigger.writes_seen == 2
        assert trigger.injections == 1
        assert not device.power.is_on

    def test_state_corruptor_flips_one_bit_at_chosen_boot(self):
        sim, device = self._bench()
        address = FRAM_BASE + 0x100
        device.memory.write_u8(address, 0b1010)
        corruptor = StateCorruptor(device, [(address, 4)], [(1, 0, 0)])
        device.reboot()  # boot 0: no flip
        assert device.memory.read_u8(address) == 0b1010
        device.reboot()  # boot 1: flip bit 0
        assert device.memory.read_u8(address) == 0b1011
        assert corruptor.applied == [(address, 0)]

    def test_recorder_excludes_the_final_boot(self):
        sim, device = self._bench()
        executor = IntermittentExecutor(sim, device, _OpCounter(total=100))
        executor.flash()
        recorder = RebootRecorder(device)
        ScheduledBrownouts(device, [11])
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        # One injected reboot; the completing boot is not in the schedule.
        assert recorder.schedule() == [11]


class TestOracle:
    def _obs(self, status="completed", faults=0, observables=None):
        return Observation(status=status, faults=faults, boots=1, reboots=0,
                           observables=observables or {"consistent": True})

    def test_continuous_against_itself_agrees(self):
        config = CampaignConfig(app="linked_list", runs=1, seed=5)
        adapter = get_adapter(config.app)
        a = run_continuous_leg(config, adapter, leg_seed=17)
        b = run_continuous_leg(config, adapter, leg_seed=23)
        verdict = compare(a, b, adapter.invariant_keys)
        assert verdict.verdict == "agree"

    def test_memory_faults_diverge(self):
        verdict = compare(self._obs(status="crashed", faults=2), self._obs(),
                          ("consistent",))
        assert verdict.diverged

    def test_invariant_mismatch_diverges(self):
        verdict = compare(self._obs(observables={"consistent": False}),
                          self._obs(), ("consistent",))
        assert verdict.diverged
        assert "consistent" in verdict.diff

    def test_clean_timeout_is_inconclusive_not_divergent(self):
        verdict = compare(self._obs(status="timeout"), self._obs(),
                          ("consistent",))
        assert verdict.verdict == "inconclusive"

    def test_schedule_variant_observables_are_ignored(self):
        verdict = compare(
            self._obs(observables={"consistent": True, "length": 3}),
            self._obs(observables={"consistent": True, "length": 9}),
            ("consistent",),
        )
        assert verdict.verdict == "agree"

    def test_broken_control_is_inconclusive(self):
        verdict = compare(self._obs(status="crashed", faults=1),
                          self._obs(status="crashed", faults=1),
                          ("consistent",))
        assert verdict.verdict == "inconclusive"


class TestShrinker:
    def test_ddmin_reduces_to_the_two_critical_entries(self):
        schedule = [5, 3, 7, 9, 11, 13, 2, 8]

        def still_fails(candidate):
            return 7 in candidate and 2 in candidate

        minimal = ddmin(schedule, still_fails)
        assert sorted(minimal) == [2, 7]

    def test_ddmin_respects_test_budget(self):
        calls = 0

        def still_fails(candidate):
            nonlocal calls
            calls += 1
            return True

        ddmin(list(range(64)), still_fails, max_tests=10)
        assert calls <= 10

    def test_unreproducible_schedule_returns_none(self):
        assert shrink_schedule([3, 4], lambda c: False) is None
        assert shrink_schedule([], lambda c: True) is None

    def _find_lethal_op(self, config, adapter, continuous):
        """An op index whose lone injected reboot diverges (Fig. 3 window)."""
        for op_index in range(20, 160):
            verdict = verdict_for_schedule(config, adapter, continuous,
                                           [op_index])
            if verdict.diverged:
                return op_index
        pytest.fail("no single-reboot divergence found in the scan range")

    def test_planted_divergence_shrinks_to_minimal_schedule(self):
        """A Fig. 3 divergence padded with noise shrinks to <= 2 reboots."""
        config = CampaignConfig(app="linked_list", runs=1, seed=13)
        adapter = get_adapter(config.app)
        continuous = run_continuous_leg(config, adapter, leg_seed=1)
        lethal = self._find_lethal_op(config, adapter, continuous)
        # Plant the lethal reboot, then pad with late no-op reboots (the
        # crash ends the run before they matter).
        planted = [lethal, 33, 77, 51]

        def still_fails(candidate):
            return verdict_for_schedule(config, adapter, continuous,
                                        candidate).diverged

        assert still_fails(planted)
        minimal = shrink_schedule(planted, still_fails)
        assert minimal is not None
        assert len(minimal) <= 2
        assert lethal in minimal


class TestCampaignDeterminism:
    CONFIG = dict(app="linked_list", runs=12, seed=42)

    def test_identical_seeds_give_byte_identical_reports(self):
        config = CampaignConfig(**self.CONFIG)
        first = render_json(run_campaign(config))
        second = render_json(run_campaign(config))
        assert first == second

    def test_different_seeds_give_different_plans(self):
        a = run_campaign(CampaignConfig(**{**self.CONFIG, "seed": 1}))
        b = run_campaign(CampaignConfig(**{**self.CONFIG, "seed": 2}))
        assert [r["seed"] for r in a["runs"]] != [r["seed"] for r in b["runs"]]

    def test_worker_count_does_not_change_records(self):
        solo = run_campaign(CampaignConfig(**self.CONFIG, workers=1))
        pooled = run_campaign(CampaignConfig(**self.CONFIG, workers=2))
        for report in (solo, pooled):
            report["campaign"].pop("workers")
        assert render_json(solo) == render_json(pooled)

    def test_execute_run_is_pure(self):
        config = CampaignConfig(**self.CONFIG)
        assert execute_run(config, 3) == execute_run(config, 3)

    def test_fault_plans_are_pure_functions_of_the_rng(self):
        import random

        config = CampaignConfig(**self.CONFIG, corrupt_checkpoints=True)
        assert plan_faults(config, random.Random(7)) == plan_faults(
            config, random.Random(7)
        )

    def test_report_has_no_wall_clock_fields(self):
        report = run_campaign(CampaignConfig(app="linked_list", runs=2, seed=1,
                                             shrink=False))
        # The echoed config legitimately contains the max_wall_s budget
        # knob (a deterministic input, not a measurement); everything
        # else must be free of wall-clock data.
        text = render_json({k: v for k, v in report.items() if k != "campaign"})
        for forbidden in ("time.time", "timestamp", "elapsed", "wall"):
            assert forbidden not in text


class TestFig3Regression:
    """The paper's linked-list bug, found by the campaign engine."""

    def test_naive_build_diverges_and_shrinks(self):
        report = run_campaign(
            CampaignConfig(app="linked_list", runs=40, seed=42)
        )
        summary = report["summary"]
        assert summary["diverged"] >= 1
        shrunk = [d["shrunk"] for d in report["divergences"] if d.get("shrunk")]
        assert shrunk, "no divergence could be minimized"
        assert min(s["reboots"] for s in shrunk) <= 2

    def test_protected_build_never_diverges(self):
        report = run_campaign(
            CampaignConfig(app="linked_list", runs=40, seed=42, protect=True)
        )
        assert report["summary"]["diverged"] == 0
        assert report["summary"]["inconclusive"] == 0

    def test_counter_lost_update_found_only_in_naive_build(self):
        naive = run_campaign(CampaignConfig(app="counter", runs=30, seed=11))
        protected = run_campaign(
            CampaignConfig(app="counter", runs=30, seed=11, protect=True)
        )
        assert naive["summary"]["diverged"] >= 1
        assert protected["summary"]["diverged"] == 0


class TestCli:
    def test_cli_writes_parseable_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = campaign_main([
            "--app", "linked_list", "--runs", "6", "--seed", "42",
            "--out", str(out), "--quiet", "--no-shrink",
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["summary"]["runs"] == 6
        assert "runs in" in capsys.readouterr().out

    def test_cli_fail_on_divergence(self, tmp_path):
        out = tmp_path / "report.json"
        code = campaign_main([
            "--app", "linked_list", "--runs", "40", "--seed", "42",
            "--out", str(out), "--quiet", "--no-shrink",
            "--fail-on-divergence",
        ])
        assert code == 1

    def test_cli_rejects_bad_mode(self, tmp_path, capsys):
        code = campaign_main(["--modes", "telepathy", "--quiet"])
        assert code == 2
        assert "unknown fault modes" in capsys.readouterr().err


@pytest.mark.campaign_smoke
class TestSmokeCampaign:
    """The default-suite smoke campaign (must stay well under 30 s)."""

    def test_acceptance_campaign_smoke(self):
        config = CampaignConfig(app="linked_list", runs=200, seed=42,
                                workers=1)
        report = run_campaign(config)
        summary = report["summary"]
        assert summary["runs"] == 200
        assert summary["diverged"] >= 1
        assert all(
            d.get("shrunk") is None or d["shrunk"]["reboots"] <= 4
            for d in report["divergences"]
        )
        # Determinism spot check against the run-level records.
        again = execute_run(config, report["divergences"][0]["index"])
        assert again["verdict"]["verdict"] == "diverged"
