"""Tests for the tooling extensions: VCD export, profiler, Ekho recorder."""

import pytest

from repro import PowerFailure, Simulator, TargetDevice, make_wisp_power_system
from repro.core.monitor import PassiveMonitor
from repro.core.profiler import EnergyProfiler, _percentile
from repro.instruments import Oscilloscope
from repro.power.ekho import HarvestRecorder, record_environment
from repro.power.harvester import RFHarvester, TraceDrivenSource
from repro.sim import units
from repro.sim.vcd import scope_to_vcd, trace_to_vcd


class TestVcdExport:
    def _scope_capture(self):
        sim = Simulator(seed=3)
        scope = Oscilloscope(sim, sample_rate=1 * units.KHZ)
        analog = {"v": 2.4}
        digital = {"on": False}
        scope.add_channel("vcap", lambda: analog["v"])
        scope.add_digital_channel("gpio", lambda: digital["on"])
        scope.start()
        sim.advance(0.002)
        analog["v"] = 2.0
        digital["on"] = True
        sim.advance(0.002)
        return scope

    def test_header_and_definitions(self):
        text = scope_to_vcd(self._scope_capture())
        assert "$timescale 1us $end" in text
        assert "$enddefinitions $end" in text
        assert "$var real 64" in text  # vcap
        assert "$var wire 1" in text  # gpio

    def test_value_changes_present(self):
        text = scope_to_vcd(self._scope_capture())
        assert "r2.4 " in text
        assert "r2 " in text or "r2.0" in text or "r2 " in text

    def test_change_compression(self):
        """Repeated identical samples emit one change, not many."""
        text = scope_to_vcd(self._scope_capture())
        # vcap held 2.4 for two samples but appears once.
        assert text.count("r2.4 ") == 1

    def test_timestamps_monotonic(self):
        text = scope_to_vcd(self._scope_capture())
        ticks = [
            int(line[1:]) for line in text.splitlines() if line.startswith("#")
        ]
        assert ticks == sorted(ticks)

    def test_trace_recorder_export(self):
        sim = Simulator(seed=3)
        sim.trace.record("power.vcap", 2.4)
        sim.advance(0.001)
        sim.trace.record("power.vcap", 2.3)
        sim.trace.record("flag", True)
        sim.trace.record("skipme", {"complex": "payload"})
        text = trace_to_vcd(sim.trace, ["power.vcap", "flag", "skipme"])
        assert "power_vcap" in text
        assert "flag" in text
        assert "skipme" not in text  # non-numeric payloads skipped

    def test_end_to_end_real_discharge(self, sim):
        power = make_wisp_power_system(sim, distance_m=1.6)
        device = TargetDevice(sim, power)
        scope = Oscilloscope(sim, sample_rate=2 * units.KHZ)
        scope.add_channel("vcap", lambda: power.vcap)
        scope.start()
        power.charge_until_on()
        with pytest.raises(PowerFailure):
            while True:
                device.execute_cycles(1000)
        text = scope_to_vcd(scope)
        assert text.count("\n") > 50  # a real waveform came out


class TestEnergyProfiler:
    def _profiled_monitor(self):
        sim = Simulator(seed=4)
        vcap = {"v": 2.4}
        monitor = PassiveMonitor(
            sim, read_vcap=lambda: vcap["v"], read_vreg=lambda: 2.0
        )
        capacitance = 47 * units.UF
        # Synthesise 20 iterations: wp1 at start, wp2 at end, each
        # costing 10 mV, with a "reboot" (recharge) every 7th.
        for i in range(20):
            monitor.on_watchpoint(1)
            sim.advance(1e-3)
            vcap["v"] -= 0.01
            monitor.on_watchpoint(2)
            sim.advance(0.2e-3)
            if i % 7 == 6:
                vcap["v"] = 2.4
        return monitor, capacitance

    def test_region_stats(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance, full_energy=135e-6)
        profiler.define_region("iteration", 1, 2)
        stats = profiler.stats("iteration")
        assert stats.count >= 15
        assert stats.energy_median_j > 0
        assert stats.time_median_s == pytest.approx(1e-3, rel=0.01)
        assert 0 < stats.energy_percent(135e-6) < 5

    def test_cdf_monotonic(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance)
        profiler.define_region("iteration", 1, 2)
        cdf = profiler.cdf("iteration")
        probabilities = [p for _, p in cdf]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == 1.0

    def test_histogram_renders(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance)
        profiler.define_region("iteration", 1, 2)
        art = profiler.histogram("iteration", bins=5)
        assert "uJ |" in art

    def test_report_covers_all_regions(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance, full_energy=135e-6)
        profiler.define_region("iteration", 1, 2)
        profiler.define_region("ghost", 8, 9)
        text = profiler.report()
        assert "iteration:" in text
        assert "ghost: (no complete occurrences)" in text

    def test_percentile_uses_nearest_rank(self):
        """p90 of 10 known samples is the 9th sample, not the maximum.

        The old floor-based index returned ``ordered[9]`` (= p100) for
        p90 of 10 samples; nearest-rank is ``ceil(0.9 * 10) - 1 = 8``.
        """
        samples = [float(i) for i in range(1, 11)]  # 1.0 .. 10.0
        assert _percentile(samples, 0.9) == 9.0
        assert _percentile(samples, 0.5) == 5.0
        assert _percentile(samples, 1.0) == 10.0
        assert _percentile(samples, 0.0) == 1.0
        assert _percentile([4.2], 0.9) == 4.2
        with pytest.raises(ValueError):
            _percentile([], 0.5)

    def test_region_p90_pinned_on_known_samples(self):
        """RegionStats.energy_p90_j for a synthetic 10-sample region."""
        sim = Simulator(seed=11)
        vcap = {"v": 2.4}
        monitor = PassiveMonitor(
            sim, read_vcap=lambda: vcap["v"], read_vreg=lambda: 2.0
        )
        capacitance = 47 * units.UF
        # 10 iterations with per-iteration voltage drops of 1..10 mV:
        # energy costs are strictly increasing, so ranks are unambiguous.
        drops_mv = list(range(1, 11))
        costs = []
        for drop in drops_mv:
            v_start = 2.4
            v_end = v_start - drop * 1e-3
            vcap["v"] = v_start
            monitor.on_watchpoint(1)
            sim.advance(1e-3)
            vcap["v"] = v_end
            monitor.on_watchpoint(2)
            sim.advance(1e-3)
            vcap["v"] = 2.4  # recharge between iterations
            costs.append(
                units.cap_energy(capacitance, v_start)
                - units.cap_energy(capacitance, v_end)
            )
        profiler = EnergyProfiler(monitor, capacitance)
        profiler.define_region("r", 1, 2)
        stats = profiler.stats("r")
        assert stats.count == 10
        ordered = sorted(costs)
        assert stats.energy_p90_j == pytest.approx(ordered[8])  # 9th, not max
        assert stats.energy_median_j == pytest.approx(ordered[4])

    def test_duplicate_region_rejected(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance)
        profiler.define_region("x", 1, 2)
        with pytest.raises(ValueError):
            profiler.define_region("x", 1, 2)

    def test_unknown_region_rejected(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance)
        with pytest.raises(KeyError):
            profiler.stats("nope")

    def test_whole_iteration_mode(self):
        monitor, capacitance = self._profiled_monitor()
        profiler = EnergyProfiler(monitor, capacitance)
        profiler.define_region("full", 1, 1)
        assert len(profiler.energy_samples("full")) > 10

    def test_profiles_a_real_application(self, sim):
        from repro import EDB, IntermittentExecutor
        from repro.apps import ActivityRecognitionApp
        from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile
        from repro.testing import make_fast_target

        device = make_fast_target(sim)
        device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
        edb = EDB(sim, device)
        edb.trace("watchpoints")
        app = ActivityRecognitionApp(output="none", max_iterations=40)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        executor.run(duration=10.0)
        profiler = EnergyProfiler(
            edb.monitor,
            device.constants.capacitance,
            full_energy=device.constants.full_energy,
        )
        profiler.define_region("iteration", 1, 1)
        stats = profiler.stats("iteration")
        assert stats.count > 10
        assert "iteration" in stats.render(device.constants.full_energy)


class TestEkhoRecorder:
    def test_records_at_sample_rate(self):
        sim = Simulator(seed=6)
        recorder = record_environment(
            sim, RFHarvester(), duration=0.5, sample_rate=100.0
        )
        assert 50 <= recorder.sample_count <= 52

    def test_replay_matches_recording(self):
        sim = Simulator(seed=6)
        harvester = RFHarvester(distance_m=1.3)
        recorder = record_environment(sim, harvester, duration=0.2)
        replay = recorder.to_source()
        assert replay.open_circuit_voltage(0.05) == pytest.approx(
            harvester.open_circuit_voltage(0.05)
        )
        assert replay.source_resistance(0.05) == pytest.approx(
            harvester.source_resistance(0.05)
        )

    def test_captures_environment_changes(self):
        sim = Simulator(seed=6)
        harvester = RFHarvester(distance_m=1.0)
        recorder = HarvestRecorder(sim, harvester, sample_rate=100.0)
        recorder.start()
        sim.advance(0.1)
        harvester.distance_m = 2.0  # tag moved away mid-recording
        sim.advance(0.1)
        recorder.stop()
        replay = recorder.to_source()
        assert replay.source_resistance(0.19) > 2 * replay.source_resistance(0.01)

    def test_csv_roundtrip(self):
        sim = Simulator(seed=6)
        recorder = record_environment(sim, RFHarvester(), duration=0.1)
        text = recorder.to_csv()
        replay = HarvestRecorder.from_csv(text)
        original = recorder.to_source()
        assert replay.open_circuit_voltage(0.05) == pytest.approx(
            original.open_circuit_voltage(0.05)
        )

    def test_csv_header_validated(self):
        with pytest.raises(ValueError):
            HarvestRecorder.from_csv("wrong,header,row\n1,2,3\n")

    def test_empty_recording_rejected(self):
        sim = Simulator(seed=6)
        recorder = HarvestRecorder(sim, RFHarvester())
        with pytest.raises(ValueError):
            recorder.to_source()

    def test_replayed_trace_drives_a_device(self):
        """Record one environment, replay it into a fresh simulation,
        and observe comparable charge timing — Ekho's repeatability."""
        sim_record = Simulator(seed=6)
        recorder = record_environment(
            sim_record, RFHarvester(distance_m=1.6), duration=1.0
        )
        replay = recorder.to_source()

        def charge_time(source):
            from repro.power.capacitor import StorageCapacitor
            from repro.power.supply import PowerSystem

            sim = Simulator(seed=1)
            power = PowerSystem(
                sim, source, StorageCapacitor(47 * units.UF, voltage=1.8)
            )
            return power.charge_until_on()

        live = charge_time(RFHarvester(distance_m=1.6))
        replayed = charge_time(replay)
        assert replayed == pytest.approx(live, rel=0.05)
