"""Tests for the four case-study applications (§5.3).

Each application is tested both for functional correctness on
continuous power (the control condition) and for its characteristic
behaviour under intermittent power — manifesting or catching the
paper's failure modes.
"""

import pytest

from repro import (
    EDB,
    IntermittentExecutor,
    RunStatus,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import (
    ActivityRecognitionApp,
    FibonacciApp,
    LinkedListApp,
    RfidFirmwareApp,
)
from repro.apps.sensors import (
    Accelerometer,
    I2C_ADDRESS,
    MotionProfile,
    MotionSegment,
    REG_XDATA_L,
)
from repro.io.rfid import CommandKind, ReaderCommand, RfidChannel, RFIDReader
from repro.runtime.nonvolatile import NVLinkedList
from repro.testing import make_fast_target


class TestLinkedListApp:
    def test_continuous_power_never_fails(self, sim, fast_target):
        app = LinkedListApp(max_iterations=500)
        executor = IntermittentExecutor(sim, fast_target, app)
        result = executor.run_continuous(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        assert result.faults == []

    def test_intermittent_power_corrupts_and_crashes(self):
        """The Figure 3 bug: organic manifestation under intermittence."""
        sim = Simulator(seed=2)
        device = make_fast_target(sim)
        app = LinkedListApp(update_cycles=0)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0, stop_on_fault=True)
        assert result.status is RunStatus.CRASHED
        assert "unmapped" in result.faults[0] or "escapes" in result.faults[0]

    def test_crash_loop_persists_across_reboots(self):
        """After corruption the device wedges on every boot (§5.3.1)."""
        sim = Simulator(seed=2)
        device = make_fast_target(sim)
        app = LinkedListApp(update_cycles=0)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=6.0)
        assert result.status is RunStatus.CRASHED
        assert len(result.faults) > 3  # faulted again and again

    def test_assert_catches_before_the_wild_write(self):
        from repro.runtime.executor import AssertionHaltSignal

        sim = Simulator(seed=2)
        device = make_fast_target(sim)
        edb = EDB(sim, device)
        app = LinkedListApp(use_assert=True, update_cycles=0)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.ASSERT_FAILED
        assert isinstance(result.detail, AssertionHaltSignal)
        assert result.faults == []  # caught before any wild access
        assert device.power.is_tethered  # keep-alive holds state live

    def test_safe_list_variant_survives(self):
        """Ablation: repair-on-boot eliminates the crash."""
        sim = Simulator(seed=2)
        device = make_fast_target(sim)
        app = LinkedListApp(use_safe_list=True, update_cycles=0)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.TIMEOUT  # still running happily
        assert result.faults == []
        assert app.iterations_completed > 100


class TestFibonacciApp:
    def test_release_build_completes(self, sim, fast_target):
        app = FibonacciApp(debug_build=False, capacity=60)
        executor = IntermittentExecutor(sim, fast_target, app)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED

    def test_values_follow_recurrence(self, sim, fast_target):
        app = FibonacciApp(debug_build=False, capacity=20)
        executor = IntermittentExecutor(sim, fast_target, app)
        executor.run(duration=10.0)
        nv_list = NVLinkedList(executor.api, "fib", capacity=20)
        values = [
            nv_list.node_at(addr).get("value") for addr in nv_list.walk()
        ]
        for a, b, c in zip(values, values[1:], values[2:]):
            assert c == (a + b) & 0xFFFF

    def test_consistency_check_passes_on_healthy_list(self, sim, fast_target):
        app = FibonacciApp(debug_build=True, capacity=30)
        executor = IntermittentExecutor(sim, fast_target, app)
        executor.flash()
        fast_target.power.charge_until_on()
        nv_list = NVLinkedList(executor.api, "fib", capacity=30)
        assert app.consistency_check(executor.api, nv_list)

    def test_consistency_check_detects_stale_tail(self, sim, fast_target):
        app = FibonacciApp(debug_build=True, capacity=30)
        executor = IntermittentExecutor(sim, fast_target, app)
        executor.flash()
        fast_target.power.charge_until_on()
        nv_list = NVLinkedList(executor.api, "fib", capacity=30)
        nv_list.header.set("tail", nv_list.node_address(0))  # stale
        assert not app.consistency_check(executor.api, nv_list)
        assert app.check_failures == 1

    def test_debug_build_starves_without_guard(self):
        """Figure 9 top: the check eats whole charge cycles eventually."""
        sim = Simulator(seed=5)
        device = make_fast_target(sim, fading_sigma=0.5)
        app = FibonacciApp(debug_build=True, check_node_cycles=2000, capacity=400)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=12.0)
        assert result.status is RunStatus.TIMEOUT
        alloc = device.memory.read_u16(executor.api.nv_var("fib.alloc"))
        assert alloc < 400  # wedged well short of the target

    def test_energy_guard_unblocks_debug_build(self):
        """Figure 9 bottom: guarded check is free; progress continues."""
        sim = Simulator(seed=5)
        device = make_fast_target(sim, fading_sigma=0.5)
        edb = EDB(sim, device)
        app = FibonacciApp(
            debug_build=True,
            use_energy_guard=True,
            check_node_cycles=2000,
            capacity=400,
        )
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        result = executor.run(duration=15.0)
        assert result.status is RunStatus.COMPLETED
        # A few pool slots can leak to interrupted appends; the point is
        # that growth ran to (near) capacity instead of wedging.
        alloc = device.memory.read_u16(executor.api.nv_var("fib.alloc"))
        assert alloc == 400
        assert result.detail >= 380


class TestSensors:
    def test_stationary_profile_reads_gravity(self):
        sim = Simulator(seed=9)
        accel = Accelerometer(sim, MotionProfile.stationary())
        data = bytes(accel.read_register(REG_XDATA_L + i) for i in range(6))
        x, y, z = Accelerometer.decode_sample(data)
        assert abs(x) < 100
        assert 900 < z < 1100

    def test_walking_profile_oscillates(self):
        sim = Simulator(seed=9)
        accel = Accelerometer(sim, MotionProfile.walking())
        xs = []
        for _ in range(40):
            data = bytes(accel.read_register(REG_XDATA_L + i) for i in range(6))
            xs.append(Accelerometer.decode_sample(data)[0])
            sim.advance(0.05)
        assert max(xs) - min(xs) > 300

    def test_schedule_alternates_ground_truth(self):
        profile = MotionProfile(
            [MotionSegment(False, 1.0), MotionSegment(True, 1.0)]
        )
        assert not profile.is_moving(0.5)
        assert profile.is_moving(1.5)
        assert not profile.is_moving(2.5)  # repeats

    def test_decode_sample_sign_extension(self):
        data = b"\xff\xff" + b"\x00\x00" * 2
        assert Accelerometer.decode_sample(data)[0] == -1

    def test_decode_sample_length_checked(self):
        with pytest.raises(ValueError):
            Accelerometer.decode_sample(b"\x00")


class TestActivityRecognition:
    def test_classifier_separates_the_classes(self):
        stationary = ActivityRecognitionApp.classify((1000, 8))
        moving = ActivityRecognitionApp.classify((1100, 300))
        assert not stationary
        assert moving

    def test_featurise(self):
        window = [(0, 0, 1000), (0, 0, 1000), (0, 0, 1000)]
        mean, dev = ActivityRecognitionApp.featurise(window)
        assert mean == 1000
        assert dev == 0

    def test_invalid_output_mode(self):
        with pytest.raises(ValueError):
            ActivityRecognitionApp(output="smoke-signals")

    def test_counts_stationary_when_still(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.stationary())
        )
        app = ActivityRecognitionApp(output="none", max_iterations=30)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED
        stats = ActivityRecognitionApp.read_stats(executor.api)
        assert stats["stationary"] > stats["moving"]

    def test_counts_moving_when_walking(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.walking())
        )
        app = ActivityRecognitionApp(output="none", max_iterations=30)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED
        stats = ActivityRecognitionApp.read_stats(executor.api)
        assert stats["moving"] > stats["stationary"]

    def test_stats_survive_reboots(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.stationary())
        )
        app = ActivityRecognitionApp(output="none", max_iterations=60)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=20.0)
        assert result.status is RunStatus.COMPLETED
        assert result.reboots > 0  # progress spanned power failures
        stats = ActivityRecognitionApp.read_stats(executor.api)
        assert stats["total"] >= 60

    def test_edb_printf_mode_emits_trace(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.stationary())
        )
        edb = EDB(sim, device)
        app = ActivityRecognitionApp(output="edb", max_iterations=5)
        executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED
        assert len(edb.printf_output) >= 5
        assert "m=" in edb.printf_output[0][1]

    def test_uart_mode_transmits(self, sim):
        device = make_fast_target(sim)
        device.i2c.attach(
            I2C_ADDRESS, Accelerometer(sim, MotionProfile.stationary())
        )
        chunks = []
        device.uart.subscribe_tx(chunks.append)
        app = ActivityRecognitionApp(output="uart", max_iterations=5)
        executor = IntermittentExecutor(sim, device, app)
        executor.run(duration=10.0)
        assert b"m=" in b"".join(chunks)


class TestRfidFirmware:
    def _rig(self, seed=31, distance=1.02):
        sim = Simulator(seed=seed)
        power = make_wisp_power_system(sim, distance_m=distance, fading_sigma=0.5)
        device = TargetDevice(sim, power)
        channel = RfidChannel(sim, distance_m=distance)
        reader = RFIDReader(sim, channel)
        return sim, device, channel, reader

    def test_firmware_replies_to_queries(self):
        sim, device, channel, reader = self._rig()
        reader.start()
        app = RfidFirmwareApp(channel, max_replies=10)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0)
        assert result.status is RunStatus.COMPLETED
        assert app.commands_decoded >= 10

    def test_corrupted_commands_fail_decode(self):
        sim, device, channel, reader = self._rig()
        channel.downlink_corruption_at_1m = 0.9
        reader.start()
        app = RfidFirmwareApp(channel)
        executor = IntermittentExecutor(sim, device, app)
        executor.run(duration=3.0)
        assert app.decode_failures > 0

    def test_response_rate_reasonable_at_one_meter(self):
        sim, device, channel, reader = self._rig()
        reader.start()
        app = RfidFirmwareApp(channel)
        executor = IntermittentExecutor(sim, device, app)
        executor.run(duration=10.0)
        assert 0.5 < reader.stats.response_rate <= 1.0

    def test_tag_power_cycles_while_serving(self):
        """Figure 12: the sawtooth continues through RFID service."""
        sim, device, channel, reader = self._rig()
        reader.start()
        app = RfidFirmwareApp(channel)
        executor = IntermittentExecutor(sim, device, app)
        result = executor.run(duration=10.0)
        assert result.reboots >= 5
        assert reader.stats.replies_heard > 50
