"""End-to-end tests for the JSON-RPC debug server (`repro.debug`).

Four layers, cheapest first:

- **service**: in-process `DebugService.dispatch` — session isolation,
  handle-keyed breakpoint registry, cursor-based trace polling;
- **wire**: `handle_line` — JSON-RPC envelope validation, error
  objects for malformed input, batches, notifications;
- **equivalence**: a scripted break→inspect→charge→resume loop over
  RPC against the identical `DebugConsole` scenario on a same-seed
  twin rig — transcripts, costed cycles, and the energy trajectory
  must match exactly;
- **subprocess** (`debug_smoke`): spawn ``python -m repro.debug.server
  --port 0``, drive two concurrent TCP sessions, clean shutdown.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro import EDB, IntermittentExecutor, Simulator, TargetDevice
from repro import make_wisp_power_system
from repro.campaign.apps import get_adapter
from repro.core.console import DebugConsole
from repro.debug import errors
from repro.debug.client import DebugClient, DebugRpcError
from repro.debug.server import DebugTCPServer, handle_line
from repro.debug.service import DebugService
from repro.mcu.memory import FRAM_BASE


@pytest.fixture
def service() -> DebugService:
    svc = DebugService()
    yield svc
    svc.close_all()


def rpc(service: DebugService, method: str, **params):
    return service.dispatch(method, params)


def wire(service: DebugService, payload) -> dict | list | None:
    """One wire line through the full JSON-RPC path."""
    line = payload if isinstance(payload, str) else json.dumps(payload)
    response = handle_line(service, line + "\n")
    return json.loads(response) if response is not None else None


class TestSessionManagement:
    def test_create_list_close(self, service):
        a = rpc(service, "session.create", app="fibonacci", seed=1)
        b = rpc(service, "session.create", app="linked_list", seed=2)
        assert a["session"] != b["session"]
        listed = rpc(service, "session.list")["sessions"]
        assert [s["session"] for s in listed] == [a["session"], b["session"]]
        rpc(service, "session.close", session=a["session"])
        listed = rpc(service, "session.list")["sessions"]
        assert [s["session"] for s in listed] == [b["session"]]

    def test_unknown_session_is_typed_error(self, service):
        with pytest.raises(errors.SessionNotFound):
            rpc(service, "session.status", session="s999")

    def test_unknown_app_rejected(self, service):
        with pytest.raises(errors.InvalidParams):
            rpc(service, "session.create", app="bogus")

    def test_unknown_power_rejected(self, service):
        with pytest.raises(errors.InvalidParams):
            rpc(service, "session.create", app="fibonacci", power="nuclear")

    def test_session_limit(self):
        svc = DebugService(max_sessions=1)
        rpc(svc, "session.create", app="fibonacci", seed=1)
        with pytest.raises(errors.SessionLimit):
            rpc(svc, "session.create", app="fibonacci", seed=2)
        svc.close_all()


class TestSessionIsolation:
    def test_breakpoints_do_not_bleed(self, service):
        a = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        b = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        rpc(service, "break.add_code", session=a, id=5)
        rpc(service, "break.add_energy", session=b, threshold_v=2.0)
        bps_a = rpc(service, "break.list", session=a)["breakpoints"]
        bps_b = rpc(service, "break.list", session=b)["breakpoints"]
        assert [bp["kind"] for bp in bps_a] == ["code"]
        assert [bp["kind"] for bp in bps_b] == ["energy"]
        # The underlying registries are distinct objects.
        sa, sb = service.sessions[a], service.sessions[b]
        assert sa.edb.breakpoints is not sb.edb.breakpoints
        assert sa.edb.monitor is not sb.edb.monitor
        assert sa.sim is not sb.sim

    def test_monitor_and_run_state_do_not_bleed(self, service):
        a = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        b = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        rpc(service, "trace.enable", session=a, stream="energy")
        rpc(service, "run", session=a, duration=0.02)
        status_a = rpc(service, "session.status", session=a)
        status_b = rpc(service, "session.status", session=b)
        assert status_a["cycles"] > 0
        assert status_b["cycles"] == 0
        assert status_b["time"] == 0.0
        poll_b = rpc(service, "trace.poll", session=b)
        assert poll_b["events"] == []

    def test_same_seed_sessions_replay_identically(self, service):
        a = rpc(service, "session.create", app="fibonacci", seed=77)["session"]
        b = rpc(service, "session.create", app="fibonacci", seed=77)["session"]
        result_a = rpc(service, "run", session=a, duration=0.03)
        result_b = rpc(service, "run", session=b, duration=0.03)
        assert result_a == result_b

    def test_close_detaches_board(self, service):
        a = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        session = service.sessions[a]
        rpc(service, "session.close", session=a)
        assert session.edb.board.device is None


class TestBreakpointHandles:
    def test_duplicate_registrations_remove_exact_handle(self, service):
        """The wrong-instance removal bug, pinned at the RPC layer."""
        sid = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        h1 = rpc(service, "break.add_code", session=sid, id=7)["handle"]
        h2 = rpc(service, "break.add_code", session=sid, id=7)["handle"]
        assert h1 != h2
        session = service.sessions[sid]
        first = session.handles[h1]
        removed = rpc(service, "break.remove", session=sid, handle=h2)
        assert removed["removed"] is True
        remaining = rpc(service, "break.list", session=sid)["breakpoints"]
        assert [bp["handle"] for bp in remaining] == [h1]
        # The instance left in the manager is exactly handle h1's.
        assert session.edb.breakpoints.breakpoints == [first]
        assert session.edb.breakpoints.breakpoints[0] is first

    def test_set_enabled_by_handle(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        h1 = rpc(service, "break.add_code", session=sid, id=3)["handle"]
        h2 = rpc(service, "break.add_code", session=sid, id=3)["handle"]
        rpc(service, "break.set_enabled", session=sid, handle=h2, enabled=False)
        bps = {
            bp["handle"]: bp["enabled"]
            for bp in rpc(service, "break.list", session=sid)["breakpoints"]
        }
        assert bps == {h1: True, h2: False}

    def test_unknown_handle_is_typed_error(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        with pytest.raises(errors.UnknownHandle):
            rpc(service, "break.remove", session=sid, handle=42)

    def test_combined_and_energy_handles(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        rpc(service, "break.add_combined", session=sid, id=2, threshold_v=2.0)
        rpc(service, "break.add_energy", session=sid, threshold_v=1.9)
        kinds = [
            bp["kind"]
            for bp in rpc(service, "break.list", session=sid)["breakpoints"]
        ]
        assert kinds == ["combined", "energy"]

    def test_watch_pc_roundtrip(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=1)["session"]
        session = service.sessions[sid]
        rpc(service, "watch.pc", session=sid, pc=0x4400)
        assert 0x4400 in session.edb._watched_pcs
        rpc(service, "unwatch.pc", session=sid, pc=0x4400)
        assert session.edb._watched_pcs == set()


class TestTraceCursor:
    def test_incremental_polls_see_every_event_once(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=5)["session"]
        rpc(service, "trace.enable", session=sid, stream="energy")
        rpc(service, "run", session=sid, duration=0.03)
        full = rpc(service, "trace.poll", session=sid, cursor=0, limit=100000)
        assert full["remaining"] == 0
        assert len(full["events"]) > 20
        # Re-read in awkward chunk sizes; concatenation must be exact.
        chunks = []
        cursor = 0
        for limit in (1, 7, 3, 13, 100000):
            while True:
                page = rpc(
                    service, "trace.poll", session=sid, cursor=cursor, limit=limit
                )
                chunks.extend(page["events"])
                cursor = page["next_cursor"]
                if page["remaining"] == 0:
                    break
            if len(chunks) == len(full["events"]):
                break
        assert chunks == full["events"]

    def test_poll_across_runs_never_drops(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=5)["session"]
        rpc(service, "trace.enable", session=sid, stream="energy")
        seen = []
        cursor = 0
        for _ in range(3):
            rpc(service, "run", session=sid, duration=0.01)
            while True:
                page = rpc(
                    service, "trace.poll", session=sid, cursor=cursor, limit=17
                )
                seen.extend(page["events"])
                cursor = page["next_cursor"]
                if page["remaining"] == 0:
                    break
        monitor = service.sessions[sid].edb.monitor
        assert len(seen) == len(monitor.events)
        times = [e["time"] for e in seen]
        assert times == sorted(times)

    def test_stream_filter_keeps_global_cursor(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=5)["session"]
        rpc(service, "trace.enable", session=sid, stream="energy")
        rpc(service, "trace.enable", session=sid, stream="watchpoints")
        rpc(service, "run", session=sid, duration=0.02)
        page = rpc(
            service,
            "trace.poll",
            session=sid,
            cursor=0,
            limit=100000,
            stream="energy",
        )
        assert all(e["stream"] == "energy" for e in page["events"])
        # The cursor still advanced over the whole unified list.
        monitor = service.sessions[sid].edb.monitor
        assert page["next_cursor"] == len(monitor.events)

    def test_bad_cursor_rejected(self, service):
        sid = rpc(service, "session.create", app="fibonacci", seed=5)["session"]
        with pytest.raises(errors.InvalidParams):
            rpc(service, "trace.poll", session=sid, cursor=-1)
        with pytest.raises(errors.InvalidParams):
            rpc(service, "trace.poll", session=sid, limit=0)


class TestWireProtocol:
    def test_parse_error_object(self, service):
        response = wire(service, "this is not json")
        assert response["error"]["code"] == errors.PARSE_ERROR
        assert response["id"] is None

    def test_invalid_envelope(self, service):
        response = wire(service, {"id": 3, "method": "debug.ping"})
        assert response["error"]["code"] == errors.INVALID_REQUEST
        assert response["id"] == 3

    def test_non_string_method(self, service):
        response = wire(service, {"jsonrpc": "2.0", "id": 1, "method": 9})
        assert response["error"]["code"] == errors.INVALID_REQUEST

    def test_positional_params_rejected(self, service):
        response = wire(
            service,
            {"jsonrpc": "2.0", "id": 1, "method": "debug.ping", "params": [1]},
        )
        assert response["error"]["code"] == errors.INVALID_REQUEST

    def test_method_not_found(self, service):
        response = wire(service, {"jsonrpc": "2.0", "id": 2, "method": "nope"})
        assert response["error"]["code"] == errors.METHOD_NOT_FOUND

    def test_invalid_params_surface_code(self, service):
        response = wire(
            service,
            {
                "jsonrpc": "2.0",
                "id": 4,
                "method": "session.create",
                "params": {"app": "bogus"},
            },
        )
        assert response["error"]["code"] == errors.INVALID_PARAMS

    def test_session_not_found_surfaces_code(self, service):
        response = wire(
            service,
            {
                "jsonrpc": "2.0",
                "id": 5,
                "method": "run",
                "params": {"session": "sX", "duration": 0.1},
            },
        )
        assert response["error"]["code"] == errors.SESSION_NOT_FOUND

    def test_server_survives_malformed_then_serves(self, service):
        assert wire(service, "garbage")["error"]["code"] == errors.PARSE_ERROR
        response = wire(
            service, {"jsonrpc": "2.0", "id": 6, "method": "debug.ping"}
        )
        assert response["result"]["pong"] is True

    def test_notification_produces_no_response(self, service):
        assert wire(service, {"jsonrpc": "2.0", "method": "debug.ping"}) is None

    def test_batch_request(self, service):
        responses = wire(
            service,
            [
                {"jsonrpc": "2.0", "id": 1, "method": "debug.ping"},
                {"jsonrpc": "2.0", "id": 2, "method": "nope"},
                {"jsonrpc": "2.0", "method": "debug.ping"},  # notification
            ],
        )
        assert isinstance(responses, list) and len(responses) == 2
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["result"]["pong"] is True
        assert by_id[2]["error"]["code"] == errors.METHOD_NOT_FOUND

    def test_empty_batch_is_invalid(self, service):
        response = wire(service, [])
        assert response["error"]["code"] == errors.INVALID_REQUEST

    def test_methods_listing(self, service):
        methods = wire(
            service, {"jsonrpc": "2.0", "id": 1, "method": "debug.methods"}
        )["result"]["methods"]
        for required in (
            "session.create",
            "break.add_code",
            "trace.poll",
            "run",
            "debug.divergence_context",
        ):
            assert required in methods


class TestConsoleEquivalence:
    """The RPC break→inspect→charge→resume flow vs the console path.

    Same seed, same app build, same scripted per-stop actions — the
    target must not be able to tell who is driving the debugger: the
    session transcripts, costed protocol cycles, and the full energy
    trajectory must agree exactly.
    """

    SEED = 4242
    DURATION = 0.25
    THRESHOLD = 2.0
    CHARGE_TO = 2.35

    def _console_rig(self):
        sim = Simulator(seed=self.SEED)
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power)
        edb = EDB(sim, device)
        program = get_adapter("fibonacci").build(False, 16)
        executor = IntermittentExecutor(sim, device, program, edb=edb.libedb())
        console = DebugConsole(edb, executor=executor)
        transcripts: list[list[str]] = []

        def on_break(event, session) -> None:
            session.read_u16(FRAM_BASE)
            session.charge(self.CHARGE_TO)
            transcripts.append(list(session.transcript))

        edb.on_break(on_break)  # replaces the console's announcer
        console.execute(f"break energy {self.THRESHOLD}")
        console.execute(f"run {self.DURATION}")
        return device, edb, transcripts

    def _rpc_rig(self, service):
        sid = rpc(
            service, "session.create", app="fibonacci", seed=self.SEED
        )["session"]
        rpc(
            service,
            "break.on_hit",
            session=sid,
            actions=[
                {"op": "read_u16", "address": FRAM_BASE},
                {"op": "charge", "volts": self.CHARGE_TO},
            ],
        )
        rpc(service, "break.add_energy", session=sid, threshold_v=self.THRESHOLD)
        result = rpc(service, "run", session=sid, duration=self.DURATION)
        return service.sessions[sid], result

    def test_transcripts_cycles_and_energy_match(self, service):
        device_c, edb_c, transcripts_c = self._console_rig()
        session_r, result_r = self._rpc_rig(service)
        device_r = session_r.device

        # The loop actually exercised breakpoints on both sides.
        assert transcripts_c, "console rig never hit the energy breakpoint"
        stops = rpc(service, "break.log", session=session_r.id)["stops"]
        assert len(stops) == len(transcripts_c)

        # Interactive-session transcripts are line-for-line identical.
        transcripts_r = [stop["transcript"] for stop in stops]
        assert transcripts_r == transcripts_c

        # Target-side observables: costed cycles, clock, reboots.
        assert device_r.cycles_executed == device_c.cycles_executed
        assert device_r.reboot_count == device_c.reboot_count
        assert session_r.sim.now == edb_c.sim.now

        # Energy trajectory: final Vcap and the full sampled series.
        assert device_r.power.vcap == device_c.power.vcap
        series_c = edb_c.monitor.energy_series()
        series_r = session_r.edb.monitor.energy_series()
        assert series_r == series_c

    def test_mem_access_costs_match_console(self, service):
        """RPC mem.read uses the console's exact tether bracket."""
        sim = Simulator(seed=9)
        power = make_wisp_power_system(sim)
        device_c = TargetDevice(sim, power)
        edb_c = EDB(sim, device_c)
        edb_c.libedb()
        power.charge_until_on()
        console = DebugConsole(edb_c)
        console.execute(f"read 0x{FRAM_BASE:04X} 8")

        sid = rpc(service, "session.create", app="fibonacci", seed=9)["session"]
        session_r = service.sessions[sid]
        session_r.device.power.charge_until_on()
        rpc(service, "mem.read", session=sid, address=FRAM_BASE, count=8)

        assert session_r.device.cycles_executed == device_c.cycles_executed
        assert not session_r.device.power.is_tethered


class TestTCPTransport:
    @pytest.fixture
    def tcp_server(self, service):
        server = DebugTCPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.server_address[1]
        server.shutdown()
        server.server_close()

    def test_two_clients_two_isolated_sessions(self, service, tcp_server):
        with DebugClient.connect_tcp("127.0.0.1", tcp_server) as c1, \
                DebugClient.connect_tcp("127.0.0.1", tcp_server) as c2:
            s1 = c1.create_session(app="fibonacci", seed=1)
            s2 = c2.create_session(app="linked_list", seed=2)
            s1.break_code(5)
            assert s2.breakpoints() == []
            assert len(s1.breakpoints()) == 1
            s1.trace("energy")
            r1 = s1.run(0.02)
            r2 = s2.run(0.02)
            assert r1["status"] and r2["status"]
            # Cross-connection visibility: one shared service.
            assert len(c2.list_sessions()) == 2
            # s2 traced nothing; s1 did.
            assert s2.poll_trace()["events"] == []
            assert s1.poll_trace()["next_cursor"] > 0
            s1.close()
            s2.close()

    def test_malformed_line_keeps_connection_alive(self, service, tcp_server):
        client = DebugClient.connect_tcp("127.0.0.1", tcp_server)
        try:
            client._send_line("not json at all\n")
            error_line = json.loads(client._recv_line())
            assert error_line["error"]["code"] == errors.PARSE_ERROR
            assert client.ping()["pong"] is True
        finally:
            client.close()

    def test_rpc_error_raises_typed_client_error(self, service, tcp_server):
        with DebugClient.connect_tcp("127.0.0.1", tcp_server) as client:
            with pytest.raises(DebugRpcError) as excinfo:
                client.call("session.status", session="sX")
            assert excinfo.value.code == errors.SESSION_NOT_FOUND


def _server_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.mark.debug_smoke
class TestServerSmoke:
    def test_tcp_server_subprocess_end_to_end(self):
        """Spawn the real entry point; two sessions; trace; clean exit."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.debug.server", "--port", "0"],
            stderr=subprocess.PIPE,
            env=_server_env(),
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "listening on" in banner, banner
            port = int(banner.rsplit(":", 1)[1])
            with DebugClient.connect_tcp("127.0.0.1", port) as client:
                assert client.ping()["pong"] is True
                a = client.create_session(app="fibonacci", seed=1)
                b = client.create_session(app="counter", seed=2)
                a.trace("energy")
                result = a.run(0.05)
                assert result["status"] in ("completed", "timeout")
                page = a.poll_trace(limit=100000)
                assert page["events"], "no energy samples over RPC"
                assert all(e["stream"] == "energy" for e in page["events"])
                assert b.status()["cycles"] == 0  # untouched sibling
                a.close()
                b.close()
                assert client.list_sessions() == []
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_stdio_server_subprocess(self):
        with DebugClient.spawn_stdio(env=_server_env()) as client:
            session = client.create_session(app="fibonacci", seed=3)
            session.trace("energy")
            session.charge(2.4)
            result = session.run(0.05)
            assert result["status"] in ("completed", "timeout")
            assert session.poll_trace()["events"]
            session.close()
