"""Unit tests for breakpoint management and the passive monitor."""

import pytest

from repro.core.breakpoints import Breakpoint, BreakpointKind, BreakpointManager
from repro.core.monitor import PassiveMonitor
from repro.sim import units
from repro.sim.kernel import Simulator


class TestBreakpointValidation:
    def test_code_needs_id(self):
        with pytest.raises(ValueError):
            Breakpoint(BreakpointKind.CODE)

    def test_energy_needs_threshold(self):
        with pytest.raises(ValueError):
            Breakpoint(BreakpointKind.ENERGY)

    def test_combined_needs_both(self):
        with pytest.raises(ValueError):
            Breakpoint(BreakpointKind.COMBINED, breakpoint_id=1)

    def test_describe_mentions_fields(self):
        bp = Breakpoint(
            BreakpointKind.COMBINED, breakpoint_id=2, energy_threshold=2.0
        )
        text = bp.describe()
        assert "id=2" in text
        assert "2.00V" in text


class TestBreakpointManager:
    def test_code_triggers_on_id(self):
        manager = BreakpointManager()
        manager.add_code(1)
        assert manager.check_code_point(1, vcap=2.4) is not None
        assert manager.check_code_point(2, vcap=2.4) is None

    def test_disabled_does_not_trigger(self):
        manager = BreakpointManager()
        manager.add_code(1)
        manager.set_enabled(1, False)
        assert manager.check_code_point(1, vcap=2.4) is None

    def test_reenable(self):
        manager = BreakpointManager()
        manager.add_code(1)
        manager.set_enabled(1, False)
        assert manager.set_enabled(1, True) == 1
        assert manager.check_code_point(1, vcap=2.4) is not None

    def test_energy_triggers_at_or_below(self):
        manager = BreakpointManager()
        manager.add_energy(2.0)
        assert manager.check_energy(2.1) is None
        assert manager.check_energy(2.0) is not None

    def test_combined_needs_both_conditions(self):
        manager = BreakpointManager()
        manager.add_combined(1, 2.0)
        assert manager.check_code_point(1, vcap=2.3) is None  # energy too high
        assert manager.check_code_point(1, vcap=1.9) is not None

    def test_one_shot_disables_after_hit(self):
        manager = BreakpointManager()
        manager.add_code(1, one_shot=True)
        assert manager.check_code_point(1, vcap=2.4) is not None
        assert manager.check_code_point(1, vcap=2.4) is None

    def test_hits_counted(self):
        manager = BreakpointManager()
        bp = manager.add_code(1)
        manager.check_code_point(1, vcap=2.4)
        manager.check_code_point(1, vcap=2.4)
        assert bp.hits == 2

    def test_remove(self):
        manager = BreakpointManager()
        bp = manager.add_energy(2.0)
        assert manager.remove(bp) is True
        assert manager.check_energy(1.5) is None

    def test_remove_absent_is_noop(self):
        manager = BreakpointManager()
        manager.add_code(1)
        stray = Breakpoint(BreakpointKind.CODE, breakpoint_id=1)
        assert manager.remove(stray) is False
        assert len(manager.breakpoints) == 1

    def test_remove_duplicate_registration_targets_exact_instance(self):
        """Removal matches by identity, not dataclass value-equality.

        Two identical registrations (same kind/id, zero hits) compare
        equal; removing the *second* instance must not silently delete
        the first.
        """
        manager = BreakpointManager()
        first = manager.add_code(7)
        second = manager.add_code(7)
        assert first == second and first is not second
        assert manager.remove(second) is True
        assert manager.breakpoints == [first]
        assert manager.breakpoints[0] is first
        # And removing it again is a no-op, not a hit on `first`.
        assert manager.remove(second) is False
        assert manager.breakpoints[0] is first

    def test_active_lists_enabled_only(self):
        manager = BreakpointManager()
        manager.add_code(1)
        manager.add_code(2)
        manager.set_enabled(2, False)
        assert len(manager.active()) == 1


class TestPassiveMonitor:
    def _monitor(self, sample_rate=1 * units.KHZ):
        sim = Simulator(seed=3)
        vcap = {"v": 2.4}
        monitor = PassiveMonitor(
            sim,
            read_vcap=lambda: vcap["v"],
            read_vreg=lambda: 2.0,
            sample_rate=sample_rate,
        )
        return sim, vcap, monitor

    def test_energy_stream_samples_periodically(self):
        sim, _, monitor = self._monitor()
        monitor.enable("energy")
        sim.advance(0.01)
        times, values = monitor.energy_series()
        assert 9 <= len(values) <= 10  # float accumulation at the boundary
        assert values[0] == pytest.approx(2.4)

    def test_disable_stops_sampling(self):
        sim, _, monitor = self._monitor()
        monitor.enable("energy")
        sim.advance(0.005)
        monitor.disable("energy")
        sim.advance(0.01)
        assert 4 <= len(monitor.energy_series()[0]) <= 5

    def test_unknown_stream_rejected(self):
        _, _, monitor = self._monitor()
        with pytest.raises(ValueError):
            monitor.enable("quantum")

    def test_watchpoints_record_energy_context(self):
        sim, vcap, monitor = self._monitor()
        monitor.enable("watchpoints")
        vcap["v"] = 2.2
        monitor.on_watchpoint(1)
        stats = monitor.watchpoint_stats(1)
        assert stats.hits == 1
        assert stats.energy_readings == [2.2]

    def test_disabled_watchpoint_ignored(self):
        _, _, monitor = self._monitor()
        monitor.disabled_watchpoints.add(4)
        monitor.on_watchpoint(4)
        assert monitor.watchpoint_stats(4).hits == 0

    def test_io_and_rfid_streams_gated_by_enable(self):
        _, _, monitor = self._monitor()
        monitor.on_io("uart", b"x")  # not enabled: dropped
        monitor.enable("iobus")
        monitor.on_io("uart", b"y")
        events = monitor.stream_events("iobus")
        assert len(events) == 1
        assert events[0].value["payload"] == b"y"

    def test_listeners_see_live_events(self):
        _, _, monitor = self._monitor()
        seen = []
        monitor.listeners.append(seen.append)
        monitor.enable("rfid")
        monitor.on_rfid({"kind": "CMD_QUERY"})
        assert seen[0].stream == "rfid"

    def test_energy_between_pairs(self):
        sim, vcap, monitor = self._monitor()
        cap = 47 * units.UF
        # wp1 at 2.4, wp2 at 2.3 -> cost = E(2.4) - E(2.3)
        vcap["v"] = 2.4
        monitor.on_watchpoint(1)
        sim.advance(1e-3)
        vcap["v"] = 2.3
        monitor.on_watchpoint(2)
        costs = monitor.energy_between(1, 2, cap)
        expected = 0.5 * cap * (2.4**2 - 2.3**2)
        assert costs == [pytest.approx(expected)]

    def test_energy_between_drops_reboot_cut_pairs(self):
        sim, vcap, monitor = self._monitor()
        cap = 47 * units.UF
        vcap["v"] = 2.0
        monitor.on_watchpoint(1)
        sim.advance(1e-3)
        vcap["v"] = 2.4  # charged across the pair: a reboot intervened
        monitor.on_watchpoint(2)
        assert monitor.energy_between(1, 2, cap) == []

    def test_energy_between_same_id_full_iterations(self):
        sim, vcap, monitor = self._monitor()
        cap = 47 * units.UF
        for v in (2.4, 2.35, 2.30):
            vcap["v"] = v
            monitor.on_watchpoint(1)
            sim.advance(1e-3)
        costs = monitor.energy_between(1, 1, cap)
        assert len(costs) == 2
        assert all(c > 0 for c in costs)

    def test_energy_between_unknown_watchpoints(self):
        _, _, monitor = self._monitor()
        assert monitor.energy_between(8, 9, 47e-6) == []

    def test_clear_resets_everything(self):
        sim, _, monitor = self._monitor()
        monitor.enable("energy")
        monitor.on_watchpoint(1)
        sim.advance(0.002)
        monitor.clear()
        assert monitor.events == []
        assert monitor.watchpoint_stats(1).hits == 0

    def test_clear_resets_disabled_watchpoints(self):
        """A reused monitor must not keep suppressing watchpoints a
        previous session disabled (console ``watch dis id``)."""
        _, _, monitor = self._monitor()
        monitor.disabled_watchpoints.add(3)
        monitor.on_watchpoint(3)
        assert monitor.watchpoint_stats(3).hits == 0
        monitor.clear()
        assert monitor.disabled_watchpoints == set()
        monitor.on_watchpoint(3)
        assert monitor.watchpoint_stats(3).hits == 1

    def test_clear_keeps_listeners(self):
        """Listeners are wiring, not session data — they survive clear()."""
        _, _, monitor = self._monitor()
        seen = []
        monitor.listeners.append(seen.append)
        monitor.clear()
        monitor.enable("rfid")
        monitor.on_rfid("msg")
        assert len(seen) == 1
