"""Supervised campaign execution: watchdogs, crash isolation, resume.

Covers the supervision layer end to end:

- kernel time-argument guards (negative / NaN / backwards time);
- the per-run watchdog (deterministic cycle budget, wall-clock alarm)
  and the ``NONTERMINATING`` verdict it produces;
- the structured error taxonomy and the one-record-per-index contract;
- chunking edge cases and the crash-isolation / quarantine protocol,
  exercised by the deliberately misbehaving ``chaos`` adapter;
- checkpoint journaling, interrupt safety, and ``--resume``;
- graceful degradation to serial when no worker pool can be created;
- shrink / capture tolerance of replays that no longer reproduce;
- CLI exit codes and flag plumbing.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import Simulator
from repro.campaign import (
    BudgetError,
    CampaignConfig,
    CampaignWarning,
    ERROR,
    GuestFault,
    HostFault,
    JournalMismatch,
    JournalWriter,
    NONTERMINATING,
    Observation,
    RunError,
    RunWatchdog,
    WorkerLost,
    compare,
    error_record,
    execute_run_safe,
    load_journal,
    run_campaign,
)
from repro.campaign import cli, scheduler
from repro.campaign.apps import get_adapter
from repro.campaign.errors import (
    BUDGET_EXCEEDED,
    GUEST_FAULT,
    HOST_FAULT,
    HOST_SIDE_KINDS,
    WORKER_LOST,
)
from repro.campaign.report import render_json
from repro.campaign.runner import capture_divergence, execute_run
from repro.campaign.scheduler import _chunk_indices
from repro.campaign.shrinker import shrink_schedule
from repro.sim.kernel import BudgetExceeded
from repro.testing import can_use_alarm, make_fast_target, time_limit

pytestmark = pytest.mark.campaign_robustness


# -- kernel time-argument guards -------------------------------------------
class TestKernelTimeGuards:
    def test_advance_rejects_negative_nan_inf(self, sim: Simulator):
        for bad in (-1.0, -1e-12, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.advance(bad)

    def test_advance_zero_and_positive_still_work(self, sim: Simulator):
        sim.advance(0.0)
        sim.advance(1e-6)
        assert sim.now == pytest.approx(1e-6)

    def test_advance_to_rejects_backwards_and_nonfinite(self, sim: Simulator):
        sim.advance(1.0)
        for bad in (0.5, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.advance_to(bad)
        sim.advance_to(1.0)  # no-op move to "now" is legal
        sim.advance_to(2.0)
        assert sim.now == pytest.approx(2.0)

    def test_run_until_rejects_nonfinite(self, sim: Simulator):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.run_until(bad)

    def test_call_at_rejects_past_and_nonfinite(self, sim: Simulator):
        sim.advance(1.0)
        for bad in (0.5, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.call_at(bad, lambda: None)

    def test_call_every_rejects_bad_period_and_start(self, sim: Simulator):
        for bad in (0.0, -1.0, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.call_every(bad, lambda: None)
        sim.advance(1.0)
        with pytest.raises(ValueError):
            sim.call_every(0.1, lambda: None, start=0.5)


# -- the per-run watchdog ---------------------------------------------------
class TestRunWatchdog:
    def test_cycle_budget_trips_deterministically(self):
        sim = Simulator(seed=1)
        target = make_fast_target(sim)
        with RunWatchdog(target, max_cycles=100):
            target.cycles_executed += 100
            with pytest.raises(BudgetExceeded) as info:
                for hook in list(target.post_work_hooks):
                    hook()
        assert info.value.budget == "cycles"
        # The context manager removed the hook on the way out.
        assert not target.post_work_hooks

    def test_zero_budgets_install_nothing(self):
        sim = Simulator(seed=1)
        target = make_fast_target(sim)
        dog = RunWatchdog(target, max_cycles=0, max_wall_s=0.0)
        assert not target.post_work_hooks
        dog.remove()  # idempotent even when never installed

    def test_nonterminating_status_reaches_the_verdict(self):
        # A guest that never completes, bounded only by the cycle budget.
        config = CampaignConfig(
            app="chaos", runs=6, seed=11, iterations=4, shrink=False,
            max_cycles=200_000,
        )
        record = execute_run(config, 3)  # chaos role 3: infinite compute
        assert record["intermittent"]["status"] == "nonterminating"
        assert record["verdict"]["verdict"] == NONTERMINATING
        assert "error" not in record  # a verdict, not an error record


# -- the SIGALRM wall-clock guard ------------------------------------------
@pytest.mark.skipif(not can_use_alarm(), reason="SIGALRM unavailable here")
class TestTimeLimit:
    def test_interrupts_a_host_side_spin(self):
        with pytest.raises(BudgetExceeded) as info:
            with time_limit(0.1):
                while True:
                    pass
        assert info.value.budget == "wall"

    def test_zero_seconds_is_a_no_op(self):
        with time_limit(0.0):
            pass

    def test_nesting_restores_the_outer_timer(self):
        hits = []
        with pytest.raises(BudgetExceeded):
            with time_limit(5.0):
                with time_limit(0.05):
                    while True:
                        pass
                hits.append("unreachable")
        assert not hits


# -- oracle rules for the new verdicts -------------------------------------
def _obs(status="completed", faults=0, observables=None, detail=None):
    return Observation(
        status=status, faults=faults, boots=1, reboots=0,
        observables=observables or {}, detail=detail,
    )


class TestOracleNontermination:
    def test_intermittent_nontermination_is_not_a_divergence(self):
        verdict = compare(
            _obs(status="nonterminating", detail="cycle budget"),
            _obs(status="completed"),
            invariant_keys=(),
        )
        assert verdict.verdict == NONTERMINATING
        assert not verdict.diverged

    def test_continuous_nontermination_dominates(self):
        verdict = compare(
            _obs(status="completed"),
            _obs(status="nonterminating", detail="wall budget"),
            invariant_keys=(),
        )
        assert verdict.verdict == NONTERMINATING

    def test_divergence_outranks_nontermination(self):
        # A memory fault under intermittent power is a divergence even
        # if the leg also hit its budget later — faults are checked first.
        verdict = compare(
            _obs(status="nonterminating", faults=2),
            _obs(status="completed"),
            invariant_keys=(),
        )
        assert verdict.diverged


# -- the error taxonomy -----------------------------------------------------
class TestErrorTaxonomy:
    def test_kinds(self):
        assert GuestFault("x").kind == GUEST_FAULT
        assert HostFault("x").kind == HOST_FAULT
        assert BudgetError("x").kind == BUDGET_EXCEEDED
        assert WorkerLost("x").kind == WORKER_LOST
        assert set(HOST_SIDE_KINDS) == {HOST_FAULT, WORKER_LOST}

    def test_wrap_classifies_and_passes_through(self):
        wrapped = HostFault.wrap(RuntimeError("boom"), detail="ctx")
        assert wrapped.kind == HOST_FAULT
        assert "RuntimeError: boom" in wrapped.message
        # An already-classified error is never re-labelled.
        guest = GuestFault("guest bug")
        assert HostFault.wrap(guest) is guest

    def test_error_record_shape_matches_run_records(self):
        config = CampaignConfig(runs=4, seed=3)
        record = error_record(config, 2, WorkerLost("gone"))
        assert record["index"] == 2
        assert record["intermittent"] is None
        assert record["continuous"] is None
        assert record["error"]["kind"] == WORKER_LOST
        assert record["verdict"]["verdict"] == ERROR
        # Deterministic: same config + index, same record.
        assert record == error_record(config, 2, WorkerLost("gone"))

    def test_execute_run_safe_classifies_a_guest_raise(self):
        config = CampaignConfig(
            app="chaos", runs=6, seed=5, iterations=4, shrink=False
        )
        record = execute_run_safe(config, 4)  # chaos role 4: raises
        assert record["error"]["kind"] == GUEST_FAULT
        assert "chaos guest fault" in record["error"]["message"]
        assert record["verdict"]["verdict"] == ERROR

    def test_execute_run_safe_never_raises_on_engine_failure(self, monkeypatch):
        config = CampaignConfig(runs=2, seed=5, shrink=False)
        monkeypatch.setattr(
            "repro.campaign.runner.plan_faults",
            lambda *a, **k: (_ for _ in ()).throw(TypeError("engine bug")),
        )
        record = execute_run_safe(config, 0)
        assert record["error"]["kind"] == HOST_FAULT
        assert "TypeError: engine bug" in record["error"]["message"]


# -- chunking edge cases ----------------------------------------------------
class TestChunking:
    def test_fewer_runs_than_workers(self):
        config = CampaignConfig(runs=3, workers=8)
        chunks = _chunk_indices(list(range(3)), config)
        assert [i for c in chunks for i in c] == [0, 1, 2]
        assert all(len(c) >= 1 for c in chunks)

    def test_chunk_of_one(self):
        config = CampaignConfig(runs=5, workers=2, chunk=1)
        chunks = _chunk_indices(list(range(5)), config)
        assert chunks == [[0], [1], [2], [3], [4]]

    def test_empty_index_list(self):
        config = CampaignConfig(runs=0, workers=4)
        assert _chunk_indices([], config) == []

    def test_zero_run_campaign_produces_an_empty_report(self):
        report = run_campaign(CampaignConfig(runs=0, seed=1, shrink=False))
        assert report["summary"]["runs"] == 0
        assert report["runs"] == []
        assert "partial" not in report


# -- the chaos campaign: crash isolation end to end -------------------------
CHAOS_CONFIG = CampaignConfig(
    app="chaos",
    runs=6,
    seed=7,
    iterations=4,
    shrink=False,
    workers=2,
    chunk=2,
    max_cycles=300_000,
    max_wall_s=60.0,
    retry_backoff=0.01,
)


@pytest.mark.campaign_smoke
@pytest.mark.timeout_guard(300)
class TestChaosCampaign:
    def test_survives_hangs_crashes_and_raises(self):
        report = run_campaign(CHAOS_CONFIG)
        rows = report["runs"]
        # Exactly one record per run index, in order.
        assert [r["index"] for r in rows] == list(range(6))
        by_index = {r["index"]: r for r in rows}
        # Role 2 kills its worker with os._exit: quarantined.
        assert by_index[2]["error"] == WORKER_LOST
        # Role 3 spins forever: the cycle budget rules NONTERMINATING.
        assert by_index[3]["verdict"] == NONTERMINATING
        # Role 4 raises: a guest fault, not a campaign crash.
        assert by_index[4]["error"] == GUEST_FAULT
        # Roles 0, 1, 5 behave and agree.
        for i in (0, 1, 5):
            assert by_index[i]["verdict"] == "agree"
        assert report["summary"]["error_kinds"] == {
            WORKER_LOST: 1, GUEST_FAULT: 1,
        }
        assert "partial" not in report

    def test_report_is_byte_identical_across_executions(self):
        first = render_json(run_campaign(CHAOS_CONFIG))
        second = render_json(run_campaign(CHAOS_CONFIG))
        assert first == second


# -- journaling, interruption, resume ---------------------------------------
RESUME_CONFIG = CampaignConfig(
    app="linked_list", runs=8, seed=99, iterations=8, duration=0.4,
    shrink=False, workers=1, chunk=2,
)


class TestJournalAndResume:
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        baseline = render_json(run_campaign(RESUME_CONFIG))
        journal = tmp_path / "campaign.jsonl"

        calls = []

        def interrupt_after_first_chunk(done, total):
            calls.append(done)
            if len(calls) == 1:
                raise KeyboardInterrupt

        partial = run_campaign(
            RESUME_CONFIG,
            progress=interrupt_after_first_chunk,
            journal_path=str(journal),
        )
        assert partial["partial"]["interrupted"]
        assert 0 < partial["partial"]["completed"] < RESUME_CONFIG.runs

        resumed = run_campaign(RESUME_CONFIG, resume_from=str(journal))
        assert "partial" not in resumed
        assert render_json(resumed) == baseline

    def test_journal_tolerates_a_truncated_tail(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with JournalWriter(journal, RESUME_CONFIG) as writer:
            writer.chunk_done(
                [error_record(RESUME_CONFIG, 0, GuestFault("x"))]
            )
        with journal.open("a") as fh:
            fh.write('{"indices": [1], "rec')  # killed mid-write
        records = load_journal(journal, RESUME_CONFIG)
        assert list(records) == [0]

    def test_interior_corruption_is_quarantined_not_fatal(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with JournalWriter(journal, RESUME_CONFIG) as writer:
            writer.chunk_done(
                [error_record(RESUME_CONFIG, 0, GuestFault("x"))]
            )
            writer.chunk_done(
                [error_record(RESUME_CONFIG, 1, GuestFault("y"))]
            )
        lines = journal.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace('"', "'", 1)  # rot the first chunk line
        journal.write_text("".join(lines))
        with pytest.warns(CampaignWarning, match="re-executed"):
            records = load_journal(journal, RESUME_CONFIG)
        # Never a raw JSONDecodeError: the damaged line is skipped and
        # the intact one survives.
        assert list(records) == [1]

    def test_crc_mismatch_is_quarantined_even_when_parseable(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with JournalWriter(journal, RESUME_CONFIG) as writer:
            writer.chunk_done(
                [error_record(RESUME_CONFIG, 0, GuestFault("x"))]
            )
            writer.chunk_done(
                [error_record(RESUME_CONFIG, 1, GuestFault("y"))]
            )
        lines = journal.read_text().splitlines(keepends=True)
        entry = json.loads(lines[1])
        entry["data"]["records"][0]["seed"] = 12345  # silent record rot
        lines[1] = json.dumps(entry, sort_keys=True) + "\n"
        journal.write_text("".join(lines))
        with pytest.warns(CampaignWarning):
            records = load_journal(journal, RESUME_CONFIG)
        # The rotted record is *not* trusted just because it parses.
        assert list(records) == [1]

    def test_journal_rejects_a_different_campaign(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        JournalWriter(journal, RESUME_CONFIG).close()
        other = CampaignConfig.from_dict(
            {**RESUME_CONFIG.to_dict(), "seed": 1}
        )
        with pytest.raises(JournalMismatch) as info:
            load_journal(journal, other)
        assert "seed" in str(info.value)

    def test_execution_only_knobs_may_change_between_sessions(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        JournalWriter(journal, RESUME_CONFIG).close()
        retuned = CampaignConfig.from_dict(
            {**RESUME_CONFIG.to_dict(), "workers": 4, "chunk": 1,
             "max_retries": 9, "retry_backoff": 1.0}
        )
        assert load_journal(journal, retuned) == {}

    def test_journal_and_resume_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(
                RESUME_CONFIG,
                journal_path=str(tmp_path / "a"),
                resume_from=str(tmp_path / "b"),
            )


# -- graceful degradation to serial -----------------------------------------
class TestDegradation:
    def test_campaign_completes_without_a_worker_pool(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(scheduler, "ProcessPoolExecutor", no_pool)
        config = CampaignConfig(
            app="linked_list", runs=4, seed=21, iterations=8,
            duration=0.4, shrink=False, workers=4,
        )
        report = run_campaign(config)
        assert [r["index"] for r in report["runs"]] == [0, 1, 2, 3]
        assert "partial" not in report

    def test_degraded_records_match_the_parallel_ones(self, monkeypatch):
        config = CampaignConfig(
            app="linked_list", runs=4, seed=21, iterations=8,
            duration=0.4, shrink=False, workers=4,
        )
        baseline = render_json(run_campaign(config))
        monkeypatch.setattr(
            scheduler, "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no pool")),
        )
        assert render_json(run_campaign(config)) == baseline


# -- fail-fast ---------------------------------------------------------------
class TestFailFast:
    def test_stops_after_the_first_bad_record(self):
        # seed=10 diverges at run index 0, so with chunk=1 the campaign
        # must stop almost immediately.
        config = CampaignConfig(
            app="linked_list", runs=8, seed=10, iterations=8,
            duration=0.4, shrink=False, workers=1, chunk=1,
        )
        report = run_campaign(config, fail_fast=True)
        partial = report["partial"]
        assert not partial["interrupted"]
        assert partial["completed"] < config.runs
        assert report["runs"][0]["verdict"] == "diverged"


# -- shrink / capture tolerance ---------------------------------------------
class TestReplayTolerance:
    def test_shrink_schedule_treats_a_raising_predicate_as_unreproduced(self):
        def explodes(candidate):
            raise RuntimeError("bench replay died")

        assert shrink_schedule([5, 10, 15], explodes) is None

    def test_shrink_schedule_still_minimizes_a_working_predicate(self):
        minimal = shrink_schedule(
            [5, 10, 15, 20], lambda c: 10 in c
        )
        assert minimal == [10]

    def test_capture_tolerates_a_replay_that_raises(self, monkeypatch):
        config = CampaignConfig(app="linked_list", runs=2, seed=3)
        record = {"seed": 123, "observed_schedule": [4]}
        monkeypatch.setattr(
            "repro.campaign.runner.plan_faults",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("no replay")),
        )
        note = capture_divergence(config, record)
        assert "unreproduced" in note
        assert "RuntimeError" in note["unreproduced"]


# -- the CLI ------------------------------------------------------------------
class TestCli:
    BASE = [
        "--app", "linked_list", "--runs", "4", "--seed", "21",
        "--iterations", "8", "--duration", "0.4", "--no-shrink",
        "--workers", "1", "--quiet",
    ]

    def test_ok_exit_and_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli.main(self.BASE + ["--out", str(out)])
        assert code == cli.EXIT_OK
        report = json.loads(out.read_text())
        assert report["summary"]["runs"] == 4
        assert "runs in" in capsys.readouterr().out

    def test_journal_resume_round_trip(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        assert cli.main(self.BASE + ["--out", str(fresh)]) == cli.EXIT_OK

        journal = tmp_path / "j.jsonl"
        first = tmp_path / "first.json"
        code = cli.main(
            self.BASE + ["--journal", str(journal), "--out", str(first)]
        )
        assert code == cli.EXIT_OK
        resumed = tmp_path / "resumed.json"
        code = cli.main(
            self.BASE + ["--resume", str(journal), "--out", str(resumed)]
        )
        assert code == cli.EXIT_OK
        assert resumed.read_text() == fresh.read_text()

    def test_journal_and_resume_conflict_is_a_usage_error(self, tmp_path):
        code = cli.main(
            self.BASE
            + ["--journal", str(tmp_path / "a"), "--resume", str(tmp_path / "b")]
        )
        assert code == cli.EXIT_USAGE

    def test_resume_from_a_missing_journal_is_a_usage_error(self, tmp_path):
        code = cli.main(
            self.BASE + ["--resume", str(tmp_path / "does-not-exist.jsonl")]
        )
        assert code == cli.EXIT_USAGE

    def test_resume_from_a_mismatched_journal_is_a_usage_error(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        JournalWriter(journal, CampaignConfig(runs=4, seed=1)).close()
        code = cli.main(self.BASE + ["--resume", str(journal)])
        assert code == cli.EXIT_USAGE

    @pytest.mark.timeout_guard(300)
    def test_host_faults_exit_nonzero(self, tmp_path, capsys):
        code = cli.main([
            "--app", "chaos", "--runs", "3", "--seed", "7",
            "--iterations", "4", "--no-shrink", "--workers", "2",
            "--chunk", "1", "--max-cycles", "300000",
            "--retry-backoff", "0.01", "--quiet",
            "--out", str(tmp_path / "chaos.json"),
        ])
        assert code == cli.EXIT_HOST_FAULT
        assert "worker_lost" in capsys.readouterr().out

    def test_fail_fast_flag_reaches_the_scheduler(self, tmp_path, capsys):
        code = cli.main([
            "--app", "linked_list", "--runs", "8", "--seed", "10",
            "--iterations", "8", "--duration", "0.4", "--no-shrink",
            "--workers", "1", "--chunk", "1", "--fail-fast",
            "--quiet", "--out", str(tmp_path / "ff.json"),
        ])
        assert code == cli.EXIT_DIVERGED
        assert "PARTIAL (fail-fast)" in capsys.readouterr().out
