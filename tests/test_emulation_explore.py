"""Tests for intermittence emulation (§4.2) and design-space exploration."""

import pytest

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.core.emulation import IntermittenceEmulator
from repro.explore import DesignSpaceExplorer
from repro.mcu.hlapi import ProgramComplete
from repro.runtime.nonvolatile import NVCounter
from repro.sim import units


class _CountingApp:
    name = "counting"

    def __init__(self, target=None):
        self.target = target

    def flash(self, api):
        api.device.memory.write_u16(api.nv_var("counter.n"), 0)

    def main(self, api):
        counter = NVCounter(api, "n")
        while True:
            value = counter.increment()
            api.compute(400)
            if self.target is not None and value >= self.target:
                raise ProgramComplete(value)


@pytest.fixture
def emu_rig(sim):
    # No distance tuning needed: the emulator disables the harvester.
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    return device, edb


class TestIntermittenceEmulator:
    def test_cycles_end_in_brownout_without_harvester(self, emu_rig):
        device, edb = emu_rig
        emulator = IntermittenceEmulator(edb, _CountingApp())
        result = emulator.run(cycles=4)
        assert len(result.cycles) == 4
        assert all(c.outcome == "brownout" for c in result.cycles)

    def test_progress_accumulates_across_cycles(self, emu_rig):
        device, edb = emu_rig
        app = _CountingApp(target=5000)
        emulator = IntermittenceEmulator(edb, app)
        result = emulator.run(cycles=20)
        assert result.outcome == "completed"
        assert result.count("brownout") >= 1  # needed several cycles

    def test_harvester_restored_after_run(self, emu_rig):
        device, edb = emu_rig
        assert device.power.source.enabled
        IntermittenceEmulator(edb, _CountingApp()).run(cycles=2)
        assert device.power.source.enabled

    def test_per_cycle_energy_pattern(self, emu_rig):
        """Higher turn-on level => longer active time in that cycle."""
        device, edb = emu_rig
        emulator = IntermittenceEmulator(edb, _CountingApp())
        result = emulator.run(cycles=2, turn_on_voltage=[2.4, 3.0])
        weak, strong = result.cycles
        assert strong.active_time > 1.5 * weak.active_time

    def test_pattern_length_validated(self, emu_rig):
        device, edb = emu_rig
        emulator = IntermittenceEmulator(edb, _CountingApp())
        with pytest.raises(ValueError):
            emulator.run(cycles=3, turn_on_voltage=[2.4])

    def test_subthreshold_level_rejected(self, emu_rig):
        device, edb = emu_rig
        emulator = IntermittenceEmulator(edb, _CountingApp())
        with pytest.raises(ValueError):
            emulator.run(cycles=1, turn_on_voltage=2.0)

    def test_emulation_is_deterministic(self, sim):
        def run_once(seed):
            s = Simulator(seed=seed)
            power = make_wisp_power_system(s)
            device = TargetDevice(s, power)
            edb = EDB(s, device)
            app = _CountingApp()
            emulator = IntermittenceEmulator(edb, app)
            emulator.run(cycles=3)
            return device.memory.read_u16(emulator.api.nv_var("counter.n"))

        assert run_once(7) == run_once(7)

    def test_reproduces_the_figure3_bug_without_a_harvester(self, emu_rig):
        """Emulated intermittence triggers real intermittence bugs."""
        from repro.apps import LinkedListApp

        device, edb = emu_rig
        app = LinkedListApp(update_cycles=0)
        emulator = IntermittenceEmulator(edb, app, edb_linked=False)
        # Sweep the per-cycle energy so the cut point walks the loop.
        levels = [2.4 + 0.004 * (i % 40) for i in range(120)]
        result = emulator.run(
            cycles=120, turn_on_voltage=levels, stop_on_fault=True
        )
        assert result.count("fault") == 1
        assert "unmapped" in result.cycles[-1].detail


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def sweep(self):
        explorer = DesignSpaceExplorer()
        return explorer.sweep(
            capacitances=[10 * units.UF, 47 * units.UF],
            distances=[1.4, 2.0],
        )

    def test_sweep_covers_cross_product(self, sweep):
        assert len(sweep) == 4

    def test_bigger_capacitor_longer_phases(self, sweep):
        by_key = {(p.capacitance, p.distance_m): p for p in sweep}
        small = by_key[(10 * units.UF, 1.4)]
        large = by_key[(47 * units.UF, 1.4)]
        assert large.charge_time_s > small.charge_time_s
        assert large.discharge_time_s > small.discharge_time_s
        assert large.work_per_cycle_j > small.work_per_cycle_j

    def test_further_distance_longer_charge(self, sweep):
        by_key = {(p.capacitance, p.distance_m): p for p in sweep}
        near = by_key[(47 * units.UF, 1.4)]
        far = by_key[(47 * units.UF, 2.0)]
        assert far.charge_time_s > near.charge_time_s
        assert far.duty_cycle < near.duty_cycle

    def test_close_range_is_sustained(self):
        explorer = DesignSpaceExplorer()
        point = explorer.characterise(47 * units.UF, distance_m=0.5)
        assert point.sustained
        assert point.duty_cycle == 1.0
        assert point.cycles_per_second == 0.0

    def test_extreme_range_cannot_turn_on(self):
        explorer = DesignSpaceExplorer()
        point = explorer.characterise(47 * units.UF, distance_m=40.0)
        assert point.charge_time_s == float("inf")

    def test_render_table(self, sweep):
        explorer = DesignSpaceExplorer()
        extra = [
            explorer.characterise(47 * units.UF, 0.5),
            explorer.characterise(47 * units.UF, 40.0),
        ]
        text = DesignSpaceExplorer.render_table(sweep + extra)
        assert "cap_uF" in text
        assert "sustained" in text
        assert "cannot reach turn-on" in text

    def test_work_energy_consistent_with_cycles(self, sweep):
        for point in sweep:
            if point.sustained:
                continue
            # work_j ~= I * V * t within the regulation band.
            approx = point.load_current * 2.0 * point.discharge_time_s
            assert point.work_per_cycle_j == pytest.approx(approx, rel=0.2)
