"""Unit tests for the I/O substrate: lines, UART, I2C."""

import pytest

from repro.io.i2c import I2CBus, I2CError
from repro.io.lines import DigitalLine, LineMonitor
from repro.io.uart import Uart
from repro.sim import units


class TestDigitalLine:
    def test_drive_changes_state(self, sim):
        line = DigitalLine(sim, "x")
        line.drive(True)
        assert line.state

    def test_same_state_no_transition(self, sim):
        line = DigitalLine(sim, "x")
        line.drive(False)
        assert line.transitions == 0

    def test_listeners_fire_on_edges(self, sim):
        line = DigitalLine(sim, "x")
        edges = []
        line.subscribe(edges.append)
        line.drive(True)
        line.drive(False)
        assert edges == [True, False]

    def test_pulse_counts_two_transitions(self, sim):
        line = DigitalLine(sim, "x")
        line.pulse()
        assert line.transitions == 2
        assert not line.state

    def test_unsubscribe(self, sim):
        line = DigitalLine(sim, "x")
        edges = []
        listener = edges.append
        line.subscribe(listener)
        line.drive(True)
        line.unsubscribe(listener)
        line.drive(False)
        assert edges == [True]

    def test_unsubscribe_unknown_listener_is_noop(self, sim):
        line = DigitalLine(sim, "x")
        line.unsubscribe(lambda s: None)  # never subscribed

    def test_trace_records_edges(self, sim):
        line = DigitalLine(sim, "probe")
        line.drive(True)
        assert sim.trace.count("line.probe") == 1


class TestLineMonitor:
    def test_collects_timestamped_edges(self, sim):
        monitor = LineMonitor(sim)
        line = DigitalLine(sim, "tx")
        monitor.attach(line)
        line.drive(True)
        sim.advance(1e-3)
        line.drive(False)
        edges = monitor.edges_for("tx")
        assert edges[0][1] is True
        assert edges[1][0] == pytest.approx(1e-3)

    def test_detach_stops_recording(self, sim):
        monitor = LineMonitor(sim)
        line = DigitalLine(sim, "tx")
        monitor.attach(line)
        monitor.detach(line)
        line.drive(True)
        assert monitor.edges_for("tx") == []

    def test_attach_idempotent(self, sim):
        monitor = LineMonitor(sim)
        line = DigitalLine(sim, "tx")
        monitor.attach(line)
        monitor.attach(line)
        line.drive(True)
        assert len(monitor.edges_for("tx")) == 1


class TestUart:
    def test_transmit_notifies_listeners(self, sim):
        uart = Uart(sim)
        chunks = []
        uart.subscribe_tx(chunks.append)
        uart.transmit(b"ok")
        assert b"".join(chunks) == b"ok"

    def test_transmit_costs_time_per_byte(self, sim):
        spent = []
        uart = Uart(sim, spend=lambda t, i: spent.append((t, i)), baud=115200)
        uart.transmit(b"abc")
        assert len(spent) == 3
        assert spent[0][0] == pytest.approx(10 / 115200)

    def test_tx_draws_extra_current(self, sim):
        spent = []
        uart = Uart(sim, spend=lambda t, i: spent.append(i))
        uart.transmit(b"x")
        assert spent[0] == pytest.approx(1.5 * units.MA)

    def test_receive_returns_queued_bytes(self, sim):
        uart = Uart(sim)
        uart.feed_rx(b"hello")
        assert uart.receive(3) == b"hel"
        assert uart.rx_pending == 2

    def test_receive_more_than_pending(self, sim):
        uart = Uart(sim)
        uart.feed_rx(b"ab")
        assert uart.receive(10) == b"ab"

    def test_reset_drops_rx(self, sim):
        uart = Uart(sim)
        uart.feed_rx(b"stale")
        uart.reset()
        assert uart.rx_pending == 0

    def test_transfer_energy_estimate(self, sim):
        uart = Uart(sim, baud=115200)
        energy = uart.transfer_energy(10, rail_voltage=2.0)
        assert energy == pytest.approx(1.5e-3 * 2.0 * 10 * 10 / 115200)

    def test_bad_baud_rejected(self, sim):
        with pytest.raises(ValueError):
            Uart(sim, baud=0)

    def test_byte_counters(self, sim):
        uart = Uart(sim)
        uart.transmit(b"abc")
        uart.feed_rx(b"12")
        uart.receive(2)
        assert uart.bytes_transmitted == 3
        assert uart.bytes_received == 2


class _FakeSensor:
    def __init__(self):
        self.registers = {0: 0x11, 1: 0x22, 5: 0x55}
        self.writes = {}

    def read_register(self, register):
        return self.registers.get(register, 0)

    def write_register(self, register, value):
        self.writes[register] = value


class TestI2C:
    def test_read_registers(self, sim):
        bus = I2CBus(sim)
        bus.attach(0x1D, _FakeSensor())
        assert bus.read(0x1D, 0, 2) == b"\x11\x22"

    def test_write_registers(self, sim):
        bus = I2CBus(sim)
        sensor = _FakeSensor()
        bus.attach(0x1D, sensor)
        bus.write(0x1D, 5, b"\x99")
        assert sensor.writes[5] == 0x99

    def test_missing_device_nacks(self, sim):
        bus = I2CBus(sim)
        with pytest.raises(I2CError):
            bus.read(0x55, 0)

    def test_address_conflict_rejected(self, sim):
        bus = I2CBus(sim)
        bus.attach(0x1D, _FakeSensor())
        with pytest.raises(ValueError):
            bus.attach(0x1D, _FakeSensor())

    def test_address_range_checked(self, sim):
        bus = I2CBus(sim)
        with pytest.raises(ValueError):
            bus.attach(0x80, _FakeSensor())

    def test_transactions_cost_time(self, sim):
        spent = []
        bus = I2CBus(sim, spend=lambda t, i: spent.append(t))
        bus.attach(0x1D, _FakeSensor())
        bus.read(0x1D, 0, 6)
        # 3 + 6 bytes at 9 bits / 400 kHz
        assert spent[0] == pytest.approx(9 * 9 / 400e3)

    def test_listeners_observe_transactions(self, sim):
        bus = I2CBus(sim)
        bus.attach(0x1D, _FakeSensor())
        records = []
        bus.subscribe(records.append)
        bus.read(0x1D, 0, 1)
        bus.write(0x1D, 1, b"\x01")
        assert [r["kind"] for r in records] == ["read", "write"]
        assert records[0]["data"] == b"\x11"
