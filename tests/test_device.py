"""Unit tests for TargetDevice: work/energy conversion, reboot, markers."""

import pytest

from repro.mcu.device import ExecutionLimit, PowerFailure, TargetDevice
from repro.mcu.memory import FRAM_BASE, SRAM_BASE
from repro.power import make_wisp_power_system
from repro.sim import units


class TestWorkAccounting:
    def test_cycles_advance_time(self, sim, wisp):
        t0 = sim.now
        wisp.execute_cycles(4000)  # 1 ms at 4 MHz
        assert sim.now - t0 == pytest.approx(1e-3)

    def test_cycles_drain_capacitor(self, wisp):
        v0 = wisp.power.vcap
        # Detach the harvester so draw is unambiguous.
        wisp.power.source.enabled = False
        wisp.execute_cycles(4000)
        assert wisp.power.vcap < v0

    def test_negative_cycles_rejected(self, wisp):
        with pytest.raises(ValueError):
            wisp.execute_cycles(-1)

    def test_power_failure_raised_at_brownout(self, wisp):
        wisp.power.source.enabled = False
        with pytest.raises(PowerFailure) as excinfo:
            for _ in range(10_000_000):
                wisp.execute_cycles(1000)
        assert excinfo.value.vcap == pytest.approx(1.8, abs=0.05)

    def test_execution_when_off_raises_immediately(self, sim):
        power = make_wisp_power_system(sim)  # starts at brown-out, OFF
        device = TargetDevice(sim, power)
        with pytest.raises(PowerFailure):
            device.execute_cycles(1)

    def test_extra_current_drains_faster(self, sim):
        def drain(extra):
            local = Simulator = None  # noqa: F841
            from repro.sim.kernel import Simulator as S

            s = S(seed=1)
            p = make_wisp_power_system(s)
            p.source.enabled = False
            d = TargetDevice(s, p)
            p.capacitor.voltage = 2.4
            p.reset_comparator()
            d.execute_cycles(4000, extra_current=extra)
            return p.vcap

        assert drain(5 * units.MA) < drain(0.0)

    def test_led_pin_adds_load(self, sim):
        from repro.sim.kernel import Simulator as S

        def run(led):
            s = S(seed=1)
            p = make_wisp_power_system(s)
            p.source.enabled = False
            d = TargetDevice(s, p)
            p.capacitor.voltage = 2.4
            p.reset_comparator()
            d.gpio.write("led", led)
            d.execute_cycles(4000)
            return p.vcap

        assert run(True) < run(False)

    def test_spend_time_converts_to_cycles(self, sim, wisp):
        before = wisp.cycles_executed
        wisp.spend_time(1e-3)
        assert wisp.cycles_executed - before == 4000

    def test_sleep_draws_little(self, sim, wisp):
        wisp.power.source.enabled = False
        v0 = wisp.power.vcap
        wisp.sleep(10 * units.MS)
        # Sleep at 2 uA for 10 ms is a few tens of microvolts.
        assert v0 - wisp.power.vcap < 1e-3

    def test_energy_consumed_accumulates(self, wisp):
        wisp.power.source.enabled = False
        wisp.execute_cycles(40_000)
        assert wisp.energy_consumed > 0.0


class TestDeadline:
    def test_stop_after_raises_execution_limit(self, sim, wisp):
        wisp.stop_after = sim.now + 1e-3
        with pytest.raises(ExecutionLimit):
            for _ in range(100_000):
                wisp.execute_cycles(100)

    def test_no_deadline_runs_freely(self, wisp):
        wisp.stop_after = None
        wisp.execute_cycles(100)  # no exception


class TestReboot:
    def test_clears_sram_keeps_fram(self, wisp):
        wisp.memory.write_u16(SRAM_BASE, 0xAAAA)
        wisp.memory.write_u16(FRAM_BASE, 0xBBBB)
        wisp.reboot()
        assert wisp.memory.read_u16(SRAM_BASE) == 0
        assert wisp.memory.read_u16(FRAM_BASE) == 0xBBBB

    def test_resets_gpio(self, wisp):
        wisp.gpio.write("led", True)
        wisp.reboot()
        assert not wisp.gpio.read("led")

    def test_clears_uart_rx_queue(self, wisp):
        wisp.uart.feed_rx(b"pending")
        wisp.reboot()
        assert wisp.uart.rx_pending == 0

    def test_increments_counter_and_traces(self, sim, wisp):
        wisp.reboot()
        wisp.reboot()
        assert wisp.reboot_count == 2
        assert sim.trace.count("target.reboot") == 2

    def test_resets_cpu_to_entry(self, wisp):
        from repro.mcu.assembler import assemble

        program = assemble("start: nop\nhalt")
        wisp.load_program(program)
        wisp.cpu.pc = 0x1234
        wisp.reboot()
        assert wisp.cpu.pc == program.entry


class TestCodeMarkers:
    def test_marker_notifies_hooks(self, wisp):
        seen = []
        wisp.on_code_marker.append(seen.append)
        wisp.code_marker(3)
        assert seen == [3]

    def test_marker_encodes_bits_on_lines(self, wisp):
        states = []
        wisp.marker_lines[0].subscribe(lambda s: states.append(("b0", s)))
        wisp.marker_lines[1].subscribe(lambda s: states.append(("b1", s)))
        wisp.code_marker(0b10)
        # bit1 pulses high then low; bit0 stays low.
        assert ("b1", True) in states
        assert ("b0", True) not in states

    def test_marker_id_range_enforced(self, wisp):
        with pytest.raises(ValueError):
            wisp.code_marker(0)
        with pytest.raises(ValueError):
            wisp.code_marker(wisp.max_marker_id + 1)

    def test_max_marker_id_from_line_count(self, sim):
        power = make_wisp_power_system(sim)
        device = TargetDevice(sim, power, marker_bits=2)
        assert device.max_marker_id == 3

    def test_marker_cost_is_one_cycle(self, wisp):
        before = wisp.cycles_executed
        wisp.code_marker(1)
        assert wisp.cycles_executed - before == 1


class TestHooks:
    def test_post_work_hook_runs_after_work(self, wisp):
        calls = []
        wisp.post_work_hooks.append(lambda: calls.append(True))
        wisp.execute_cycles(10)
        assert calls == [True]

    def test_hooks_not_reentrant(self, wisp):
        depth = {"n": 0, "max": 0}

        def hook():
            depth["n"] += 1
            depth["max"] = max(depth["max"], depth["n"])
            wisp.execute_cycles(1)  # would recurse without the guard
            depth["n"] -= 1

        wisp.post_work_hooks.append(hook)
        wisp.execute_cycles(10)
        assert depth["max"] == 1


class TestSelfMeasurement:
    def test_measure_own_vcap_costs_energy(self, wisp):
        wisp.power.source.enabled = False
        v_reported = wisp.measure_own_vcap()
        # The reading is close to the true value...
        assert v_reported == pytest.approx(wisp.power.vcap, abs=0.01)
        # ...but taking it consumed cycles (perturbing what it measured).
        assert wisp.cycles_executed >= 160
