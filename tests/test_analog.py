"""Unit tests for the analog interface: leakage models, harness, circuit.

These verify the *electrical* claims behind Tables 2 and 3: every
connection leaks at the nanoamp scale, the harness total stays far
below the target's milliamp-scale draw, and the charge/discharge
control loops converge with small, correctly signed errors.
"""

import pytest

from repro.analog.charge_circuit import ChargeDischargeCircuit
from repro.analog.components import (
    AnalogBufferTracker,
    DigitalBufferInput,
    InstrumentationAmplifier,
    KeeperDiode,
    LevelShifter,
    ProtectionDiodes,
)
from repro.analog.connections import EDBConnectionHarness, LineState
from repro.instruments.sourcemeter import SourceMeter
from repro.mcu.adc import Adc
from repro.power import make_wisp_power_system
from repro.sim import units
from repro.sim.kernel import Simulator
from repro.sim.rng import RngHub


@pytest.fixture
def rng():
    return RngHub(42)


class TestComponents:
    def test_inamp_bias_is_subnanoamp(self, rng):
        amp = InstrumentationAmplifier(rng, "a")
        for _ in range(100):
            assert abs(amp.leakage_current(2.4)) < 1 * units.NA

    def test_inamp_bias_flows_out_of_target(self, rng):
        amp = InstrumentationAmplifier(rng, "a")
        mean = sum(amp.leakage_current(2.4) for _ in range(200)) / 200
        assert mean < 0.0

    def test_keeper_diode_widest_scatter_of_subnano_rows(self, rng):
        diode = KeeperDiode(rng, "d")
        samples = [diode.leakage_current(2.4) for _ in range(200)]
        assert max(samples) - min(samples) > 0.5 * units.NA
        assert all(abs(s) < 5 * units.NA for s in samples)

    def test_buffer_high_leaks_tens_of_nanoamps(self, rng):
        tap = DigitalBufferInput(rng, "b")
        mean = sum(tap.leakage_current(2.4, True) for _ in range(200)) / 200
        assert 40 * units.NA < mean < 90 * units.NA

    def test_buffer_low_leaks_small_negative(self, rng):
        tap = DigitalBufferInput(rng, "b")
        mean = sum(tap.leakage_current(0.0, False) for _ in range(200)) / 200
        assert -3 * units.NA < mean < 0.0

    def test_level_shifter_is_picoamp_scale(self, rng):
        shifter = LevelShifter(rng, "s")
        for state in (True, False):
            samples = [shifter.leakage_current(2.4, state) for _ in range(100)]
            assert all(abs(s) < 0.1 * units.NA for s in samples)

    def test_tracker_follows_vreg(self, rng):
        tracker = AnalogBufferTracker(rng, "t")
        assert tracker.reference_voltage(1.9) == pytest.approx(1.9, abs=0.01)

    def test_protection_diodes_off_within_window(self):
        diodes = ProtectionDiodes()
        assert diodes.injected_current(2.0, 2.0) == 0.0
        assert diodes.injected_current(2.25, 2.0) == 0.0

    def test_protection_diodes_conduct_on_overdrive(self):
        """Section 4.1.2: >0.3 V mismatch activates the diodes."""
        diodes = ProtectionDiodes()
        current = diodes.injected_current(2.5, 2.0)
        assert current > 100 * units.UA

    def test_protection_diodes_conduct_below_ground(self):
        diodes = ProtectionDiodes()
        assert diodes.injected_current(-0.5, 2.0) < 0.0


class TestHarness:
    def test_all_figure5_connections_present(self, rng):
        harness = EDBConnectionHarness(rng)
        names = harness.names()
        for expected in (
            "capacitor_sense_manipulate",
            "regulator_sense_level_reference",
            "debugger_to_target_comm",
            "target_to_debugger_comm",
            "code_marker_0",
            "code_marker_1",
            "uart_rx",
            "uart_tx",
            "rf_rx",
            "rf_tx",
            "i2c_scl",
            "i2c_sda",
        ):
            assert expected in names
        assert len(names) == 12

    def test_worst_case_total_below_two_microamps(self, rng):
        """Table 2's bottom line: ~0.84 uA, ~0.2% of the 0.5 mA draw."""
        harness = EDBConnectionHarness(rng)
        total = harness.worst_case_total(trials=50)
        assert 0.3 * units.UA < total < 2 * units.UA
        assert total / (0.5 * units.MA) < 0.005

    def test_digital_rows_have_high_and_low_states(self, rng):
        harness = EDBConnectionHarness(rng)
        sweep = harness.characterise(trials=10)
        assert LineState.HIGH in sweep["uart_tx"]
        assert LineState.LOW in sweep["uart_tx"]
        assert LineState.ANALOG in sweep["capacitor_sense_manipulate"]

    def test_i2c_rows_far_below_buffer_rows(self, rng):
        harness = EDBConnectionHarness(rng)
        sweep = harness.characterise(trials=30)
        i2c_high = abs(sweep["i2c_scl"][LineState.HIGH]["avg"])
        uart_high = abs(sweep["uart_tx"][LineState.HIGH]["avg"])
        assert i2c_high < uart_high / 100

    def test_measure_unknown_state_rejected(self, rng):
        harness = EDBConnectionHarness(rng)
        conn = harness.connection("uart_tx")
        with pytest.raises(ValueError):
            conn.measure(2.4, LineState.ANALOG)

    def test_live_leakage_negligible_vs_load(self, rng):
        harness = EDBConnectionHarness(rng)
        leakage = harness.live_leakage({"uart_tx": True}, vcap=2.2)
        assert abs(leakage) < 2 * units.UA

    def test_unknown_connection_name(self, rng):
        harness = EDBConnectionHarness(rng)
        with pytest.raises(KeyError):
            harness.connection("jtag")


class TestSourceMeter:
    def test_characterise_full_harness(self, rng):
        meter = SourceMeter(samples_per_reading=20)
        sweep = meter.characterise_harness(EDBConnectionHarness(rng))
        stats = sweep["uart_tx"][LineState.HIGH]
        assert stats.minimum <= stats.average <= stats.maximum

    def test_worst_case_total_matches_harness_scale(self, rng):
        meter = SourceMeter(samples_per_reading=20)
        sweep = meter.characterise_harness(EDBConnectionHarness(rng))
        total = SourceMeter.worst_case_total(sweep)
        assert 0.3 * units.UA < total < 2 * units.UA

    def test_nanoamp_conversion(self, rng):
        meter = SourceMeter(samples_per_reading=5)
        conn = EDBConnectionHarness(rng).connection("uart_tx")
        stats = meter.measure(conn, LineState.HIGH)
        lo, avg, hi = stats.as_nanoamps()
        assert lo <= avg <= hi

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            SourceMeter(samples_per_reading=0)


class TestChargeDischargeCircuit:
    def _circuit(self, voltage=2.0):
        sim = Simulator(seed=77)
        power = make_wisp_power_system(sim, initial_voltage=voltage)
        power.source.enabled = False
        adc = Adc(rng=sim.rng, noise_sigma_v=0.5 * units.MV, stream="edb-adc")
        return sim, power, ChargeDischargeCircuit(sim, power, adc)

    def test_charge_reaches_target(self):
        _, power, circuit = self._circuit(2.0)
        circuit.charge_to(2.4)
        assert power.vcap >= 2.39

    def test_charge_overshoot_from_filter_dump(self):
        """The dominant Table 3 term: ~50 mV of post-charge dump."""
        _, power, circuit = self._circuit(2.0)
        circuit.charge_to(2.4)
        assert 0.0 < power.vcap - 2.4 < 0.15

    def test_discharge_reaches_target_from_above(self):
        _, power, circuit = self._circuit(2.4)
        circuit.discharge_to(2.0)
        assert power.vcap <= 2.001

    def test_discharge_undershoot_is_millivolts(self):
        _, power, circuit = self._circuit(2.4)
        circuit.discharge_to(2.0)
        assert 2.0 - power.vcap < 0.01

    def test_restore_to_lands_above_with_trim_up(self):
        _, power, circuit = self._circuit(2.5)
        circuit.restore_to(2.3)
        assert power.vcap > 2.3
        assert power.vcap - 2.3 < 0.15

    def test_charge_timeout(self):
        sim, power, circuit = self._circuit(2.0)
        circuit.charge_current = 1e-9  # effectively broken circuit
        with pytest.raises(TimeoutError):
            circuit.charge_to(2.4, timeout=0.01)

    def test_bad_targets_rejected(self):
        _, _, circuit = self._circuit()
        with pytest.raises(ValueError):
            circuit.charge_to(0.0)
        with pytest.raises(ValueError):
            circuit.discharge_to(-1.0)

    def test_operations_counted(self):
        _, _, circuit = self._circuit(2.2)
        circuit.charge_to(2.3)
        circuit.discharge_to(2.1)
        assert circuit.charge_operations == 1
        assert circuit.discharge_operations == 1

    def test_control_loops_advance_time(self):
        sim, _, circuit = self._circuit(2.0)
        t0 = sim.now
        circuit.charge_to(2.4)
        assert sim.now > t0
