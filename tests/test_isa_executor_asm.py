"""Tests for the ISA intermittent executor and the assembly workloads."""

import pytest

from repro import RunStatus, Simulator, TargetDevice, make_wisp_power_system
from repro.apps.asm_programs import (
    assemble_fibonacci,
    assemble_heartbeat,
    assemble_summation,
    read_fibonacci,
    seed_fibonacci,
)
from repro.mcu.assembler import assemble
from repro.mcu.memory import FRAM_BASE
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.isa_executor import IsaIntermittentExecutor

CHECKPOINT_BASE = FRAM_BASE + 0x8000


def _target(sim, distance=1.6):
    power = make_wisp_power_system(sim, distance_m=distance)
    return TargetDevice(sim, power)


class TestIsaExecutor:
    def test_short_program_completes(self, sim):
        device = _target(sim)
        program = assemble("start: mov #1, r4\nmov r4, &0x4400\nhalt")
        executor = IsaIntermittentExecutor(sim, device, program)
        result = executor.run(duration=2.0)
        assert result.status is RunStatus.COMPLETED
        assert device.memory.read_u16(0x4400) == 1

    def test_endless_program_times_out(self, sim):
        device = _target(sim)
        program = assemble("loop: jmp loop")
        executor = IsaIntermittentExecutor(sim, device, program)
        result = executor.run(duration=0.3)
        assert result.status is RunStatus.TIMEOUT
        assert result.boots >= 1

    def test_wild_store_crashes(self, sim):
        device = _target(sim)
        program = assemble("start: mov #0, r4\nmov #1, @r4\nhalt")
        executor = IsaIntermittentExecutor(sim, device, program)
        result = executor.run(duration=1.0)
        assert result.status is RunStatus.CRASHED
        assert "unmapped" in result.faults[0]

    def test_starved_without_harvest(self, sim):
        device = _target(sim)
        device.power.source.enabled = False
        program = assemble("loop: jmp loop")
        executor = IsaIntermittentExecutor(sim, device, program)
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.STARVED

    def test_long_workload_needs_checkpoints(self, sim):
        device = _target(sim)
        program = assemble_summation(30000)
        executor = IsaIntermittentExecutor(sim, device, program)
        # ~8 boots, each able to cover barely half the workload.
        result = executor.run(duration=0.8)
        assert result.status is RunStatus.TIMEOUT  # Sisyphean

    def test_long_workload_completes_with_checkpoints(self, sim):
        device = _target(sim)
        program = assemble_summation(30000)
        manager = CheckpointManager(device, CHECKPOINT_BASE)
        executor = IsaIntermittentExecutor(
            sim, device, program, checkpoints=manager
        )
        result = executor.run(duration=4.0)
        assert result.status is RunStatus.COMPLETED
        expected = (30000 * 30001 // 2) & 0xFFFF
        assert device.memory.read_u16(program.symbols["total"]) == expected
        assert manager.checkpoints_taken > 0

    def test_checkpoint_every_validated(self, sim):
        device = _target(sim)
        with pytest.raises(ValueError):
            IsaIntermittentExecutor(
                sim,
                device,
                assemble("loop: jmp loop"),
                checkpoints=CheckpointManager(device, CHECKPOINT_BASE),
                checkpoint_every=0,
            )


class TestAsmFibonacci:
    def test_produces_the_sequence_intermittently(self, sim):
        device = _target(sim)
        program = assemble_fibonacci()
        executor = IsaIntermittentExecutor(sim, device, program)
        seed_fibonacci(device, program)
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        values = read_fibonacci(device, program, 40)
        for a, b, c in zip(values, values[1:], values[2:]):
            assert c == (a + b) & 0xFFFF

    def test_progress_is_nv(self, sim):
        """Progress (the index word) survives reboots one-at-a-time."""
        device = _target(sim)
        program = assemble_fibonacci()
        executor = IsaIntermittentExecutor(sim, device, program)
        seed_fibonacci(device, program)
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        assert device.memory.read_u16(program.symbols["index"]) == 40

    def test_watchpoints_fire_via_mark(self, sim):
        device = _target(sim)
        hits = []
        device.on_code_marker.append(hits.append)
        program = assemble_fibonacci()
        executor = IsaIntermittentExecutor(sim, device, program)
        seed_fibonacci(device, program)
        executor.run(duration=5.0)
        assert hits.count(1) >= 38  # one per produced element
        assert hits.count(2) == 1  # completion marker


class TestAsmHeartbeat:
    def test_port_drives_gpio(self, sim):
        device = _target(sim)
        edges = []
        device.cpu.ports_out[0x01] = lambda v: device.gpio.write(
            "main_loop", bool(v)
        )
        device.gpio.subscribe("main_loop", lambda name, s: edges.append(s))
        program = assemble_heartbeat()
        executor = IsaIntermittentExecutor(sim, device, program)
        result = executor.run(duration=0.2)
        assert result.status is RunStatus.TIMEOUT  # endless by design
        assert len(edges) > 100
        beats = device.memory.read_u16(program.symbols["beats"])
        assert beats > 50
