"""Coverage of the remaining public API surface and small behaviours."""

import pytest

from repro import (
    EDB,
    IntermittentExecutor,
    RunResult,
    RunStatus,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import RfidFirmwareApp
from repro.core.emulation import EmulatedCycle, EmulationResult
from repro.io.rfid import CommandKind, ReaderCommand, RfidChannel
from repro.mcu.adc import Adc, AdcChannelMux
from repro.sim import units
from repro.sim.kernel import Simulator as Sim


class TestAdcMux:
    def test_read_code_and_channels(self):
        adc = Adc()
        mux = AdcChannelMux(adc)
        mux.add_channel("vcap", lambda: 2.4)
        mux.add_channel("vreg", lambda: 2.0)
        assert mux.channels() == ["vcap", "vreg"]
        code = mux.read_code("vcap")
        assert adc.to_volts(code) == pytest.approx(2.4, abs=0.01)

    def test_duplicate_and_unknown_channels(self):
        mux = AdcChannelMux(Adc())
        mux.add_channel("x", lambda: 1.0)
        with pytest.raises(ValueError):
            mux.add_channel("x", lambda: 1.0)
        with pytest.raises(KeyError):
            mux.read("y")

    def test_adc_validation(self):
        with pytest.raises(ValueError):
            Adc(bits=0)
        with pytest.raises(ValueError):
            Adc(reference_voltage=0.0)

    def test_adc_clamps_out_of_range(self):
        adc = Adc(reference_voltage=3.3)
        assert adc.sample(-1.0) == 0
        assert adc.sample(10.0) == adc.max_code


class TestReprsAndSummaries:
    def test_run_result_repr(self):
        result = RunResult(
            status=RunStatus.COMPLETED, sim_time=0.5, reboots=3, boots=4
        )
        text = repr(result)
        assert "completed" in text
        assert "boots=4" in text

    def test_emulation_result_summary(self):
        result = EmulationResult(
            cycles=[
                EmulatedCycle(0, 2.4, 0.0, 0.01, "brownout"),
                EmulatedCycle(1, 2.4, 0.1, 0.02, "fault", "boom"),
            ]
        )
        assert result.outcome == "fault"
        assert result.count("brownout") == 1
        assert "2 cycles" in repr(result)

    def test_empty_emulation_outcome(self):
        assert EmulationResult().outcome == "none"

    def test_capacitor_repr(self):
        from repro.power.capacitor import StorageCapacitor

        text = repr(StorageCapacitor(47 * units.UF, voltage=2.4))
        assert "47.0uF" in text

    def test_memory_region_repr(self):
        from repro.mcu.memory import MemoryRegion

        assert "non-volatile" in repr(
            MemoryRegion("fram", 0x4400, 16, volatile=False)
        )


class TestTraceRecorderMergedSubset:
    def test_merged_selected_channels_only(self):
        sim = Sim(seed=1)
        sim.trace.record("a", 1)
        sim.trace.record("b", 2)
        sim.trace.record("c", 3)
        merged = list(sim.trace.merged(["a", "c"]))
        assert [e.value for e in merged] == [1, 3]


class TestRfidFirmwareAckPath:
    def test_ack_produces_no_reply(self, sim):
        power = make_wisp_power_system(sim, distance_m=0.9)
        device = TargetDevice(sim, power)
        channel = RfidChannel(sim, downlink_corruption_at_1m=0.0)
        app = RfidFirmwareApp(channel, max_replies=1)
        executor = IntermittentExecutor(sim, device, app)
        executor.flash()
        power.charge_until_on()
        # Deliver while the firmware is running (its boot path clears
        # the demodulator queue, as a real power-up would).
        sim.call_after(
            0.01,
            lambda: channel.deliver_command(
                ReaderCommand(CommandKind.ACK, rn16=0x1234)
            ),
        )
        sim.call_after(
            0.02,
            lambda: channel.deliver_command(ReaderCommand(CommandKind.QUERY, q=0)),
        )
        result = executor.run(duration=1.0)
        assert result.status is RunStatus.COMPLETED
        assert app.commands_decoded == 2  # both decoded...
        assert channel.replies_sent == 1  # ...only the QUERY answered


class TestGpioNames:
    def test_names_listed(self, wisp):
        wisp.gpio.pin("main_loop")
        assert "led" in wisp.gpio.names()
        assert "main_loop" in wisp.gpio.names()

    def test_duplicate_pin_rejected(self, wisp):
        with pytest.raises(ValueError):
            wisp.gpio.add_pin("led")


class TestUartTiming:
    def test_transfer_time_scales(self, sim):
        from repro.io.uart import Uart

        uart = Uart(sim, baud=115200)
        assert uart.transfer_time(10) == pytest.approx(10 * uart.byte_time())


class TestPackageExports:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_alls_resolve(self):
        import repro.analog
        import repro.apps
        import repro.core
        import repro.io
        import repro.power
        import repro.runtime
        import repro.sim

        for module in (
            repro.analog,
            repro.apps,
            repro.core,
            repro.io,
            repro.power,
            repro.runtime,
            repro.sim,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None
