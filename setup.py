"""Legacy shim so editable installs work offline (no wheel package).

``pip install -e .`` on this machine has no network access, so PEP 517
build isolation cannot fetch build requirements, and the PEP 660
editable path needs the ``wheel`` package that is not installed.  The
presence of this file lets pip fall back to ``setup.py develop``:

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
