"""Figure 11: CDF of per-iteration energy cost under the three output modes.

The per-iteration energy profile is computed exactly as the paper
describes for Figure 11 — "from the difference between energy level
snapshots taken by watchpoints" — and rendered as a cumulative
distribution over energy cost (% of the 47 uF store).

Expected shape: the no-print and EDB-printf curves lie nearly on top of
each other at low cost, while the UART-printf curve is shifted right by
the print's energy.
"""

import statistics

from conftest import fmt_row, report

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import ActivityRecognitionApp
from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile

DURATION = 6.0


def run_mode(output: str) -> list[float]:
    sim = Simulator(seed=22)
    power = make_wisp_power_system(sim, distance_m=1.6, fading_sigma=1.0)
    device = TargetDevice(sim, power)
    device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
    edb = EDB(sim, device)
    edb.trace("watchpoints")
    app = ActivityRecognitionApp(output=output)
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    executor.run(duration=DURATION)
    capacitance = device.constants.capacitance
    full = device.constants.full_energy
    return [
        100 * cost / full
        for cost in edb.monitor.energy_between(1, 1, capacitance)
    ]


def _cdf(samples: list[float], grid: list[float]) -> list[float]:
    ordered = sorted(samples)
    out = []
    for x in grid:
        count = sum(1 for s in ordered if s <= x)
        out.append(count / len(ordered))
    return out


def test_fig11_energy_profile(benchmark):
    def run_all():
        return {mode: run_mode(mode) for mode in ("none", "uart", "edb")}

    profiles = benchmark.pedantic(run_all, rounds=1, iterations=1)

    medians = {m: statistics.median(v) for m, v in profiles.items()}
    # Shape: EDB hugs the no-print curve; UART is shifted right.
    assert abs(medians["edb"] - medians["none"]) < 1.0
    assert medians["uart"] > medians["none"] + 1.0
    for mode, samples in profiles.items():
        assert len(samples) > 50, f"too few iterations measured for {mode}"

    lo = min(min(v) for v in profiles.values())
    hi = max(max(v) for v in profiles.values())
    grid = [lo + (hi - lo) * i / 20 for i in range(21)]
    cdfs = {mode: _cdf(samples, grid) for mode, samples in profiles.items()}

    lines = ["energy_%   P(none)   P(uart)   P(edb)"]
    for i, x in enumerate(grid):
        lines.append(
            fmt_row(
                [
                    round(x, 2),
                    round(cdfs["none"][i], 3),
                    round(cdfs["uart"][i], 3),
                    round(cdfs["edb"][i], 3),
                ],
                [8, 9, 9, 8],
            )
        )
    lines += [
        "",
        f"medians: none={medians['none']:.2f}%  uart={medians['uart']:.2f}%  "
        f"edb={medians['edb']:.2f}%",
        "paper (Fig. 11): EDB-printf CDF tracks the no-print CDF; "
        "UART-printf shifted right by ~2.5 % of capacity",
    ]
    report("fig11_energy_profile", lines)
