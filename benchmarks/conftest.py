"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables or figures from a
fresh simulation, asserts the qualitative *shape* the paper reports
(who wins, by roughly what factor, where the crossover falls), and
emits the same rows/series the paper prints.

Output goes both to stdout and to ``benchmarks/out/<name>.txt`` so the
rendered tables survive pytest's output capturing.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(name: str, lines: list[str]) -> str:
    """Print a rendered table/series and persist it under out/."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def fmt_row(columns: list[object], widths: list[int]) -> str:
    """Fixed-width table row."""
    cells = []
    for value, width in zip(columns, widths):
        text = f"{value:.3f}" if isinstance(value, float) else str(value)
        cells.append(text.rjust(width))
    return "  ".join(cells)
