"""Figures 8/9 + §5.3.2: energy guards rescue the debug build.

Full-scale reproduction on the paper's 47 uF target:

- debug build *without* guards: the O(n) consistency check's energy
  grows with the list until it consumes entire charge/discharge cycles;
  the main loop wedges after roughly 555 appended items (paper: ~555);
- debug build *with* EDB energy guards around the check: the check runs
  on tethered power, the main loop receives the same energy in every
  cycle, and growth continues to the configured capacity.
"""

from conftest import report

from repro import (
    EDB,
    IntermittentExecutor,
    RunStatus,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import FibonacciApp

CAPACITY = 900
DISTANCE = 1.6
PAPER_HANG_LENGTH = 555


def run_unguarded():
    sim = Simulator(seed=7)
    power = make_wisp_power_system(sim, distance_m=DISTANCE, fading_sigma=0.5)
    device = TargetDevice(sim, power)
    app = FibonacciApp(debug_build=True, capacity=CAPACITY)
    executor = IntermittentExecutor(sim, device, app)
    result = executor.run(duration=60.0)
    alloc = device.memory.read_u16(executor.api.nv_var("fib.alloc"))
    return result, alloc, app.checks_run


def run_guarded():
    sim = Simulator(seed=7)
    power = make_wisp_power_system(sim, distance_m=DISTANCE, fading_sigma=0.5)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    app = FibonacciApp(
        debug_build=True, use_energy_guard=True, capacity=CAPACITY
    )
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    result = executor.run(duration=60.0)
    alloc = device.memory.read_u16(executor.api.nv_var("fib.alloc"))
    return result, alloc, app.checks_run, len(edb.save_restore_records)


def test_fig9_energy_guards(benchmark):
    def run_both():
        return run_unguarded(), run_guarded()

    unguarded, guarded = benchmark.pedantic(run_both, rounds=1, iterations=1)
    result_u, alloc_u, checks_u = unguarded
    result_g, alloc_g, checks_g, guards = guarded

    # Unguarded: wedged far short of capacity, in the paper's ~555
    # neighbourhood (we assert a generous band around it).
    assert result_u.status is RunStatus.TIMEOUT
    assert PAPER_HANG_LENGTH * 0.5 < alloc_u < PAPER_HANG_LENGTH * 1.6
    # Guarded: ran to capacity.
    assert result_g.status is RunStatus.COMPLETED
    assert alloc_g == CAPACITY
    assert guards == checks_g  # every check ran inside a guard bracket

    report(
        "fig9_energy_guards",
        [
            "build                 status     items  checks",
            f"debug, no guard       {result_u.status.value:9s} "
            f"{alloc_u:5d}  {checks_u:6d}   <- wedged: check eats the "
            "whole charge cycle",
            f"debug, energy guard   {result_g.status.value:9s} "
            f"{alloc_g:5d}  {checks_g:6d}   <- check on tethered power, "
            "main loop unharmed",
            "",
            f"hang point: {alloc_u} items  (paper: ~{PAPER_HANG_LENGTH})",
            f"energy-guard brackets executed: {guards}",
        ],
    )
