"""Figure 3: the intermittence bug — correct continuously, fatal intermittently.

The linked-list test program is run twice:

- on continuous power (the condition a conventional JTAG debugger
  imposes): it completes thousands of iterations with zero faults;
- on harvested, intermittent power: a reboot inside ``append``'s
  vulnerable window strands the tail pointer and a subsequent
  ``remove`` dereferences NULL and writes wild — the program crashes
  and stays crashed across reboots.

Also includes the intermittence-safe list ablation (repair-on-boot):
same schedule, no crash.
"""

from conftest import report

from repro import IntermittentExecutor, RunStatus, Simulator
from repro.apps import LinkedListApp
from repro.testing import make_fast_target

DURATION = 10.0


def run_all():
    results = {}
    # Control: continuous power.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    executor = IntermittentExecutor(
        sim, device, LinkedListApp(update_cycles=0, max_iterations=5000)
    )
    results["continuous"] = executor.run_continuous(duration=5.0)

    # Intermittent power: the bug manifests.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    executor = IntermittentExecutor(
        sim, device, LinkedListApp(update_cycles=0)
    )
    results["intermittent"] = executor.run(duration=DURATION)

    # Ablation: intermittence-safe list with reboot repair.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    app = LinkedListApp(use_safe_list=True, update_cycles=0)
    executor = IntermittentExecutor(sim, device, app)
    results["safe_list"] = executor.run(duration=DURATION)
    results["safe_list_iterations"] = app.iterations_completed
    return results


def test_fig3_intermittence_bug(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    continuous = results["continuous"]
    intermittent = results["intermittent"]
    safe = results["safe_list"]

    # The paper's claim, exactly: never fails continuously, fails
    # intermittently, and the failure is a wild-pointer access.
    assert continuous.status is RunStatus.COMPLETED
    assert continuous.faults == []
    assert intermittent.status is RunStatus.CRASHED
    assert len(intermittent.faults) >= 1
    assert intermittent.first_fault_time is not None
    # Ablation: the safe variant survives the same schedule.
    assert safe.status is RunStatus.TIMEOUT
    assert safe.faults == []

    report(
        "fig3_intermittence_bug",
        [
            "condition     status    boots  faults  first_fault_ms",
            f"continuous    {continuous.status.value:9s} "
            f"{continuous.boots:5d}  {len(continuous.faults):6d}  -",
            f"intermittent  {intermittent.status.value:9s} "
            f"{intermittent.boots:5d}  {len(intermittent.faults):6d}  "
            f"{intermittent.first_fault_time * 1e3:10.1f}",
            f"safe-list     {safe.status.value:9s} {safe.boots:5d}  "
            f"{len(safe.faults):6d}  -  "
            f"({results['safe_list_iterations']} iterations completed)",
            "",
            f"first fault: {intermittent.faults[0]}",
            "paper: wild pointer write, undefined behaviour, only under "
            "intermittent power",
        ],
    )
