"""Section 4.1.2: why the level shifters must track the target's Vreg.

Compares two debugger designs while the target's rail sags through a
power failure:

- EDB's design: the analog buffer keeps the level-shifter reference on
  the live Vreg — the mismatch never approaches the MCU's ±0.3 V
  protection window and no diode current flows;
- a naive design: the reference is fixed at the nominal rail — once the
  sag exceeds the window, the protection diodes conduct and dump
  hundreds of microamps into the dying target (five orders of magnitude
  over the passive-interference budget of Table 2).
"""

from conftest import fmt_row, report

from repro import Simulator, make_wisp_power_system
from repro.analog.tracking import LevelShifterBank
from repro.sim import units

SAG_POINTS = [2.4, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7, 1.6]


def run_sag_sweep():
    rows = []
    for tracked in (True, False):
        sim = Simulator(seed=12)
        power = make_wisp_power_system(sim, initial_voltage=2.4)
        power.source.enabled = False
        bank = LevelShifterBank(sim.rng, power, tracked=tracked)
        bank.drive("debugger_to_target_comm", True)
        for vcap in SAG_POINTS:
            power.capacitor.voltage = vcap
            rows.append(
                {
                    "tracked": tracked,
                    "vcap": vcap,
                    "vreg": power.vreg,
                    "mismatch": bank.mismatch("debugger_to_target_comm"),
                    "diode_current": bank.protection_current(),
                }
            )
    return rows


def test_sec412_vreg_tracking(benchmark):
    rows = benchmark.pedantic(run_sag_sweep, rounds=1, iterations=1)

    tracked = [r for r in rows if r["tracked"]]
    naive = [r for r in rows if not r["tracked"]]

    # Tracked: zero diode current at every sag point.
    assert all(r["diode_current"] == 0.0 for r in tracked)
    assert all(abs(r["mismatch"]) <= 0.31 for r in tracked)
    # Naive: catastrophic injection once the sag exceeds the window.
    worst = max(r["diode_current"] for r in naive)
    assert worst > 100 * units.UA
    # And the scale gap vs the passive budget is enormous.
    assert worst / (836.51 * units.NA) > 100

    lines = ["design    vcap_V  vreg_V  mismatch_V  diode_uA"]
    for r in rows:
        lines.append(
            ("tracked " if r["tracked"] else "naive   ")
            + fmt_row(
                [
                    round(r["vcap"], 2),
                    round(r["vreg"], 2),
                    round(r["mismatch"], 3),
                    round(r["diode_current"] / units.UA, 2),
                ],
                [6, 7, 10, 9],
            )
        )
    lines += [
        "",
        f"naive worst-case injection: {worst / units.UA:.0f} uA — "
        f"{worst / (836.51 * units.NA):.0f}x the Table 2 budget",
        "paper: a >±0.3 V mismatch 'activates the voltage protection "
        "diodes in the target's MCU, which perturbs the target's power "
        "state' — the tracking circuit prevents it",
    ]
    report("sec412_vreg_tracking", lines)
