"""Table 2: worst-case DC current over every debugger↔target connection.

Reproduces the paper's methodology: a source meter applies 0 V / 2.4 V
to each connection endpoint (2.4 V only for analog senses) and records
min/avg/max current over repeated readings.  The bottom line — the sum
of worst-case magnitudes — must stay under ~1 uA, i.e. a fraction of a
percent of the target's ~0.5 mA active draw.

Paper's reference rows (nA): target-driven digital taps ~+63..66 avg
high / ~-2 low; debugger-driven comm ~0; I2C ~0.04/-0.18; capacitor
line 0.14 avg; worst-case total 836.51 nA (0.2 % of active current).
"""

from conftest import fmt_row, report

from repro.analog.connections import EDBConnectionHarness, LineState
from repro.instruments.sourcemeter import SourceMeter
from repro.sim import units
from repro.sim.rng import RngHub

PAPER_TOTAL_NA = 836.51


def run_sweep():
    harness = EDBConnectionHarness(RngHub(42))
    meter = SourceMeter(samples_per_reading=50)
    sweep = meter.characterise_harness(harness)
    total = SourceMeter.worst_case_total(sweep)
    return harness, sweep, total


def test_table2_interference(benchmark):
    harness, sweep, total = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Shape assertions against the paper's rows.
    buffer_high = sweep["uart_tx"][LineState.HIGH]
    assert 40 < buffer_high.average / units.NA < 90
    buffer_low = sweep["uart_tx"][LineState.LOW]
    assert -4 < buffer_low.average / units.NA < 0
    comm = sweep["debugger_to_target_comm"][LineState.HIGH]
    assert abs(comm.average / units.NA) < 0.1
    i2c = sweep["i2c_scl"][LineState.HIGH]
    assert abs(i2c.average / units.NA) < 0.5
    # Bottom line: sub-microamp total, within 3x of the paper's number,
    # and a negligible fraction of the 0.5 mA active draw.
    assert PAPER_TOTAL_NA / 3 < total / units.NA < PAPER_TOTAL_NA * 3
    assert total / (0.5 * units.MA) < 0.005

    lines = ["connection                        state   min_nA    avg_nA    max_nA"]
    for name in harness.names():
        for state, stats in sweep[name].items():
            lo, avg, hi = stats.as_nanoamps()
            lines.append(
                f"{name:32s}  {state.value:6s}"
                + fmt_row([round(lo, 4), round(avg, 4), round(hi, 4)], [9, 9, 9])
            )
    lines.append("")
    lines.append(
        f"worst-case total: {total / units.NA:.2f} nA  "
        f"(paper: {PAPER_TOTAL_NA} nA)"
    )
    lines.append(
        f"fraction of 0.5 mA active draw: "
        f"{100 * total / (0.5 * units.MA):.3f} %  (paper: 0.2 %)"
    )
    report("table2_interference", lines)
