"""Table 4: cost of debug output and its impact on application behaviour.

The activity-recognition application runs on harvested power in three
configurations — no print, conventional UART printf, EDB's
energy-interference-free printf — and we measure, as the paper does:

- *iteration success rate*: completed / attempted iterations,
- *iteration cost* (energy as % of the 47 uF store, and time),
- *print cost* (energy/time added per print relative to no-print).

Paper's rows: no print 87 % / 3.0 % / 1.1 ms; UART 74 % / 5.3 % /
2.1 ms (print 2.5 % / 1.1 ms); EDB 82 % / 3.4 % / 4.7 ms (print
0.11 % / 3.1 ms).  The asserted shape: UART costs percent-scale energy
and loses the most iterations; EDB printf is ~20x cheaper in energy
than UART while being slower in wall time; success ordering
none > edb > uart.
"""

import statistics

from conftest import fmt_row, report

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import ActivityRecognitionApp
from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile

DURATION = 6.0
DISTANCE = 1.6


def run_mode(output: str) -> dict:
    sim = Simulator(seed=21)
    power = make_wisp_power_system(sim, distance_m=DISTANCE, fading_sigma=1.0)
    device = TargetDevice(sim, power)
    device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
    edb = EDB(sim, device)
    edb.trace("watchpoints")
    app = ActivityRecognitionApp(output=output)
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    executor.run(duration=DURATION)

    monitor = edb.monitor
    capacitance = device.constants.capacitance
    full = device.constants.full_energy
    costs = monitor.energy_between(1, 1, capacitance)
    times = monitor.watchpoint_stats(1).times
    diffs = [b - a for a, b in zip(times, times[1:]) if b - a < 0.05]
    return {
        "output": output,
        "success": app.iterations_completed / max(1, app.iterations_attempted),
        "iter_energy_pct": 100 * statistics.median(costs) / full,
        "iter_time_ms": statistics.median(diffs) * 1e3,
        "iterations": app.iterations_completed,
        "printfs": len(edb.printf_output),
    }


def test_table4_printf_cost(benchmark):
    def run_all():
        return {mode: run_mode(mode) for mode in ("none", "uart", "edb")}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    none, uart, edb_row = rows["none"], rows["uart"], rows["edb"]

    print_cost = {
        mode: rows[mode]["iter_energy_pct"] - none["iter_energy_pct"]
        for mode in ("uart", "edb")
    }
    print_time = {
        mode: rows[mode]["iter_time_ms"] - none["iter_time_ms"]
        for mode in ("uart", "edb")
    }

    # Shape assertions against Table 4.
    assert none["success"] > edb_row["success"] > uart["success"]
    assert uart["iter_energy_pct"] > 1.5 * none["iter_energy_pct"]
    assert abs(edb_row["iter_energy_pct"] - none["iter_energy_pct"]) < 1.0
    assert print_cost["uart"] > 1.0  # percent-scale UART print energy
    assert abs(print_cost["edb"]) < 0.5  # near-free EDB print energy
    assert print_time["edb"] > print_time["uart"]  # EDB trades time
    assert edb_row["printfs"] > 50  # the trace actually flowed

    lines = [
        "             success%  iterE_%*  iterT_ms  printE_%*  printT_ms",
    ]
    for label, row in (("no print", none), ("UART printf", uart), ("EDB printf", edb_row)):
        pe = (
            "-"
            if row is none
            else f"{row['iter_energy_pct'] - none['iter_energy_pct']:.2f}"
        )
        pt = (
            "-"
            if row is none
            else f"{row['iter_time_ms'] - none['iter_time_ms']:.2f}"
        )
        lines.append(
            f"{label:12s}"
            + fmt_row(
                [
                    round(100 * row["success"], 1),
                    round(row["iter_energy_pct"], 2),
                    round(row["iter_time_ms"], 2),
                    pe,
                    pt,
                ],
                [8, 9, 9, 9, 10],
            )
        )
    lines += [
        "* percentage of the 47 uF store at 2.4 V",
        "",
        "paper:  no print 87/3.0/1.1 | UART 74/5.3/2.1 (print 2.5/1.1) | "
        "EDB 82/3.4/4.7 (print 0.11/3.1)",
        f"iterations completed: none={none['iterations']} "
        f"uart={uart['iterations']} edb={edb_row['iterations']}",
    ]
    report("table4_printf_cost", lines)
