"""Figure 2B: the characteristic sawtooth of intermittent operation.

Regenerates the charge/discharge waveform of a WISP-class device on RF
harvested power: RC charging up to the 2.4 V turn-on threshold, active
discharge down to the 1.8 V brown-out threshold, repeat.  The series
printed is (time ms, Vcap V) at 1 kHz, with the ON/OFF annotation the
paper's green highlighting conveys.
"""

from conftest import fmt_row, report

from repro import PowerFailure, Simulator, TargetDevice, make_wisp_power_system
from repro.instruments import Oscilloscope
from repro.sim import units


def run_sawtooth(cycles: int = 4):
    sim = Simulator(seed=20)
    power = make_wisp_power_system(sim, distance_m=1.6)
    device = TargetDevice(sim, power)
    scope = Oscilloscope(sim, sample_rate=1 * units.KHZ)
    scope.add_channel("vcap", lambda: power.vcap)
    scope.add_digital_channel("on", lambda: power.is_on)
    scope.start()
    segments = []
    for _ in range(cycles):
        t0 = sim.now
        power.charge_until_on()
        charge_time = sim.now - t0
        t0 = sim.now
        try:
            while True:
                device.execute_cycles(500)
        except PowerFailure:
            pass
        segments.append((charge_time, sim.now - t0))
    return scope, segments


def test_fig2_sawtooth(benchmark):
    scope, segments = benchmark.pedantic(run_sawtooth, rounds=1, iterations=1)
    times, vcaps = scope.samples("vcap")
    _, on = scope.samples("on")

    # Shape assertions: a true sawtooth between the two thresholds.
    assert max(vcaps) <= 2.5
    assert min(vcaps) >= 1.75
    for charge_time, discharge_time in segments:
        assert 1 * units.MS < charge_time < 500 * units.MS
        assert 1 * units.MS < discharge_time < 500 * units.MS

    lines = ["time_ms  vcap_V  powered"]
    step = max(1, len(times) // 60)
    for i in range(0, len(times), step):
        lines.append(fmt_row([times[i] * 1e3, vcaps[i], int(on[i])], [8, 6, 7]))
    lines.append("")
    lines.append("cycle  charge_ms  discharge_ms")
    for index, (charge_time, discharge_time) in enumerate(segments):
        lines.append(
            fmt_row(
                [index, charge_time * 1e3, discharge_time * 1e3], [5, 9, 12]
            )
        )
    lines.append("")
    lines.append(scope.render_ascii("vcap", width=72, height=10))
    report("fig2_sawtooth", lines)
