"""Table 3: accuracy of EDB's energy save/restore mechanism.

Reproduces the paper's trial procedure: arm an energy breakpoint at
2.3 V, charge the target to 2.4 V, let the running application trip the
breakpoint (one save/tether/restore bracket), resume; 50 trials.  The
discrepancy dV = V_restored - V_saved is measured two ways, exactly as
in the paper: by the external oscilloscope-equivalent (the true
simulation state) and by EDB's own 12-bit ADC.

Paper: mean dV ~54 mV (sd 16 scope / 7.8 ADC), dE ~1.25 uJ, reported
as 4.34 % of the 47 uF store.  (The paper's three numbers are mutually
inconsistent by ~4x — see EXPERIMENTS.md — so the asserted band is on
dV, the directly measured quantity.)
"""

import statistics

from conftest import fmt_row, report

from repro import EDB, IntermittentExecutor, Simulator, TargetDevice
from repro import make_wisp_power_system
from repro.apps import ActivityRecognitionApp
from repro.apps.sensors import Accelerometer, I2C_ADDRESS, MotionProfile

TRIALS = 50


def run_trials():
    sim = Simulator(seed=11)
    power = make_wisp_power_system(sim, distance_m=1.6)
    device = TargetDevice(sim, power)
    device.i2c.attach(I2C_ADDRESS, Accelerometer(sim, MotionProfile()))
    edb = EDB(sim, device)
    app = ActivityRecognitionApp(output="none")
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    executor.flash()
    records = []
    while len(records) < TRIALS:
        edb.break_on_energy(2.3, one_shot=True)
        edb.charge(2.4)
        before = len(edb.save_restore_records)
        executor.run(duration=0.2, max_boots=3)
        records.extend(edb.save_restore_records[before:])
    return records[:TRIALS]


def test_table3_save_restore(benchmark):
    records = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    assert len(records) == TRIALS

    dv_scope = [r.delta_v_true * 1e3 for r in records]
    dv_adc = [r.delta_v_adc * 1e3 for r in records]
    de_scope = [r.delta_e() * 1e6 for r in records]
    de_pct = [r.delta_e_percent() for r in records]

    mean_scope = statistics.mean(dv_scope)
    sd_scope = statistics.stdev(dv_scope)
    mean_adc = statistics.mean(dv_adc)
    sd_adc = statistics.stdev(dv_adc)

    # Shape: small positive discrepancy, tens of millivolts, with the
    # ADC view agreeing with the scope view.
    assert 15 < mean_scope < 110  # paper: 54 mV
    assert sd_scope < 40  # paper: 16 mV
    assert abs(mean_adc - mean_scope) < 10
    assert statistics.mean(de_pct) < 10.0  # a few percent of the store

    lines = [
        "            dV_mV          dE_uJ          dE_%*",
        "         scope   ADC    scope   ADC    scope",
        fmt_row(
            [
                "mean",
                round(mean_scope, 1),
                round(mean_adc, 1),
                round(statistics.mean(de_scope), 2),
                round(
                    statistics.mean([r.delta_e(true_values=False) * 1e6 for r in records]),
                    2,
                ),
                round(statistics.mean(de_pct), 2),
            ],
            [6, 6, 5, 7, 5, 8],
        ),
        fmt_row(
            [
                "s.d.",
                round(sd_scope, 1),
                round(sd_adc, 1),
                round(statistics.stdev(de_scope), 2),
                round(
                    statistics.stdev([r.delta_e(true_values=False) * 1e6 for r in records]),
                    2,
                ),
                round(statistics.stdev(de_pct), 2),
            ],
            [6, 6, 5, 7, 5, 8],
        ),
        "* percentage of the energy stored at 2.4 V on 47 uF (135 uJ)",
        "",
        "paper: dV mean 54 mV (sd 16 scope / 7.8 ADC); dE reported as "
        "1.25 uJ and 4.34 % (mutually inconsistent; see EXPERIMENTS.md)",
        f"trials: {TRIALS}",
    ]
    report("table3_save_restore", lines)
