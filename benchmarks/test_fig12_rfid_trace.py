"""Figure 12 + §5.3.4: RFID messages correlated with the energy level.

The WISP RFID firmware runs against a continuously inventorying reader
while EDB passively captures three concurrent streams: the energy
level, incoming commands (decoded externally on the demod tap), and
outgoing replies.  The characterisation the paper derives — response
rate and replies per second — is printed alongside a merged
message/energy timeline for one discharge cycle.

Paper's working point: ~86 % of queries answered, ~13 replies/s, with
the capacitor sawtoothing between the thresholds throughout.
"""

from conftest import fmt_row, report

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import RfidFirmwareApp
from repro.io.rfid import RfidChannel, RFIDReader

DURATION = 10.0
DISTANCE = 1.02


def run_scenario():
    sim = Simulator(seed=31)
    power = make_wisp_power_system(sim, distance_m=DISTANCE, fading_sigma=0.5)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    edb.trace("energy")
    edb.trace("rfid")
    channel = RfidChannel(sim, distance_m=DISTANCE)
    channel.command_taps.append(
        lambda d: edb.board.on_rfid_message(
            {
                "dir": "rx",
                "kind": d.original.kind.value,
                "corrupted": d.corrupted,
            }
        )
    )
    channel.reply_taps.append(
        lambda r: edb.board.on_rfid_message({"dir": "tx", "kind": r.kind.value})
    )
    reader = RFIDReader(sim, channel)
    reader.start()
    app = RfidFirmwareApp(channel)
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    result = executor.run(duration=DURATION)
    return edb, reader, app, result


def test_fig12_rfid_trace(benchmark):
    edb, reader, app, result = benchmark.pedantic(
        run_scenario, rounds=1, iterations=1
    )
    rate = reader.stats.response_rate
    per_second = reader.replies_per_second(DURATION)

    # Shape: high response rate with the device still power-cycling.
    assert 0.6 < rate <= 1.0  # paper: 0.86
    assert 8.0 < per_second < 16.0  # paper: ~13/s
    assert result.reboots >= 5  # the sawtooth continued throughout
    assert app.commands_decoded > 50

    # Energy-correlated message log (the paper's main panel).
    events = edb.monitor.stream_events("rfid")
    assert len(events) > 100
    lines = ["time_s   vcap_V  dir  message"]
    for event in events[:40]:
        lines.append(
            fmt_row(
                [
                    round(event.time, 3),
                    round(event.vcap, 3),
                    event.value["dir"],
                    event.value["kind"],
                ],
                [7, 7, 3, 14],
            )
        )
    lines += [
        f"... ({len(events)} message events total)",
        "",
        f"queries sent:    {reader.stats.queries_sent}",
        f"replies heard:   {reader.stats.replies_heard}",
        f"response rate:   {100 * rate:.0f} %   (paper: 86 %)",
        f"replies/second:  {per_second:.1f}    (paper: ~13)",
        f"tag decode failures (corrupted-in-flight): {app.decode_failures}",
        f"power cycles during the run: {result.reboots}",
    ]
    report("fig12_rfid_trace", lines)
