"""Figures 6/7: the keep-alive assert catching memory corruption early.

Two runs of the linked-list application, traced with the oscilloscope
like the paper's Figure 7:

- *without* the assert: the main-loop GPIO toggles at first, then the
  corruption wedges the device — the pin goes permanently quiet while
  charge/discharge cycles continue (the paper's "mysteriously stops
  running" symptom);
- *with* the assert: at the failure instant EDB tethers the target —
  the capacitor voltage is seen rising to the tether rail instead of
  browning out, and an interactive session exposes the stale tail
  pointer before the wild write can happen.
"""

from conftest import report

from repro import EDB, IntermittentExecutor, RunStatus, Simulator
from repro.apps import LinkedListApp
from repro.instruments import Oscilloscope
from repro.sim import units
from repro.testing import make_fast_target


def run_without_assert():
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    scope = Oscilloscope(sim, sample_rate=2 * units.KHZ)
    scope.add_channel("vcap", lambda: device.power.vcap)
    scope.start()
    # Edge-accurate main-loop activity log (a scope would aliase the
    # sub-millisecond toggles at this sample rate).
    edge_times: list[float] = []
    device.gpio.subscribe("main_loop", lambda name, state: edge_times.append(sim.now))
    executor = IntermittentExecutor(
        sim, device, LinkedListApp(update_cycles=0)
    )
    result = executor.run(duration=4.0)
    toggles = device.gpio.pin("main_loop").toggles
    return sim, scope, result, toggles, edge_times


def run_with_assert():
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    edb = EDB(sim, device)
    scope = Oscilloscope(sim, sample_rate=2 * units.KHZ)
    scope.add_channel("vcap", lambda: device.power.vcap)
    scope.start()
    inspection = {}

    def on_assert(event, session):
        inspection["vcap_at_failure"] = event.vcap
        inspection["message"] = event.message
        # Figure 6's interactive session: read the list header live.
        app_api = executor.api
        header = app_api.nv_var("list.ll.header", 6)
        inspection["head"] = session.read_u16(header)
        inspection["tail"] = session.read_u16(header + 2)

    edb.on_assert(on_assert)
    app = LinkedListApp(use_assert=True, update_cycles=0)
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    result = executor.run(duration=8.0)
    # Sample the tethered level after the halt.
    sim.advance(5 * units.MS)
    device.power.step(5 * units.MS)
    vcap_after = device.power.vcap
    tethered = device.power.is_tethered
    edb.release()
    return result, inspection, vcap_after, tethered


def test_fig7_assert_tether(benchmark):
    def run_both():
        return run_without_assert(), run_with_assert()

    (no_assert, with_assert) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    sim, scope, result, toggles, edge_times = no_assert
    result2, inspection, vcap_after, tethered = with_assert

    # Top trace: main loop ran, then (effectively) stopped; the device
    # keeps power-cycling but each boot faults after at most one
    # loop-top toggle, so the toggle rate collapses by >10x.
    assert result.status is RunStatus.CRASHED
    assert toggles > 0
    fault_time = result.first_fault_time
    edges_before = sum(1 for t in edge_times if t <= fault_time)
    edges_after = sum(1 for t in edge_times if t > fault_time)
    span_before = max(fault_time, 1e-6)
    span_after = max(result.sim_time - fault_time, 1e-6)
    rate_before = edges_before / span_before
    rate_after = edges_after / span_after
    assert rate_before > 10 * rate_after

    # Bottom trace: assert halts the device on tethered power.
    assert result2.status is RunStatus.ASSERT_FAILED
    assert tethered
    assert vcap_after > 2.4  # risen to the tether rail, not browned out
    # The session saw the inconsistency: head and tail disagree.
    assert inspection["head"] != inspection["tail"]

    report(
        "fig7_assert_tether",
        [
            "WITHOUT assert (top trace):",
            f"  status: {result.status.value} after "
            f"{len(result.faults)} faults",
            f"  main-loop toggles before corruption: {toggles}",
            f"  first fault at {fault_time * 1e3:.1f} ms; toggle rate "
            f"{rate_before:.0f}/s before vs {rate_after:.0f}/s after "
            "(loop effectively dead while charge cycles continue)",
            "",
            "WITH assert (bottom trace):",
            f"  status: {result2.status.value} "
            f"({inspection['message']!r})",
            f"  Vcap at failure instant: "
            f"{inspection['vcap_at_failure']:.3f} V",
            f"  Vcap after keep-alive tether: {vcap_after:.3f} V "
            "(rising to the tethered supply, as in Fig. 7 bottom)",
            f"  live session: header.head=0x{inspection['head']:04X} "
            f"header.tail=0x{inspection['tail']:04X} (inconsistent)",
            "",
            "paper: without assert the loop stops mysteriously; with the",
            "assert EDB halts the device and tethers it at instant 1",
        ],
    )
