"""Ablation benches for the design choices DESIGN.md calls out.

1. **Checkpointing (ISA core)** — the Mementos-style result the paper's
   §2 assumes as background: a long-running computation on intermittent
   power makes *no* forward progress restarting from ``main`` (it is
   Sisyphean), but completes once volatile-context checkpoints are
   taken — and the checkpoint restore is exactly the control-flow
   discontinuity that makes Figure 3's bug possible.

2. **Restore trim strategy** — the two energy-restore approaches in
   :meth:`EnergyStateManager.end_task`: trim-up (discharge below, fine
   charge back up through the filter dump) lands tens of millivolts
   *high*; discharge-only lands millivolts *low*.  The sign matters:
   compensation paths that run at high rates (printf) must not feed the
   target energy.

3. **Passive interference accounting** — attach EDB with leakage
   injection enabled vs disabled and compare discharge-cycle lengths:
   the difference must be far below a percent (the paper's
   energy-interference-freedom claim, as an end-to-end measurement).
"""

import statistics

from conftest import report

from repro import (
    EDB,
    PowerFailure,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.mcu.assembler import assemble
from repro.mcu.cpu import Halted
from repro.mcu.memory import FRAM_BASE
from repro.runtime.checkpoint import CheckpointManager
from repro.sim import units

# A deliberately long ISA workload: sum the numbers 1..30000, keeping
# all state in (volatile) registers, writing the result to FRAM only at
# the very end.  One full pass takes ~0.5 M cycles — several times one
# charge/discharge cycle — so restart-from-main can never finish it.
LONG_PROGRAM = """
        .org 0xA000
total:  .word 0
count:  .word 0
start:  mov #0, r4
        mov #0, r5
loop:   add #1, r4
        add r4, r5
        out r4, #0x10         ; checkpoint request port
        cmp #30000, r4
        jnz loop
        mov r4, &count
        mov r5, &total
        halt
"""

CHECKPOINT_BASE = FRAM_BASE + 0x8000


def run_isa_intermittent(use_checkpoints: bool, budget_s: float = 4.0):
    sim = Simulator(seed=13)
    power = make_wisp_power_system(sim, distance_m=1.6)
    device = TargetDevice(sim, power)
    program = assemble(LONG_PROGRAM)
    device.load_program(program)
    manager = CheckpointManager(device, CHECKPOINT_BASE)
    manager.erase()
    pending = {"count": 0}

    def on_checkpoint_port(value: int) -> None:
        # Checkpoint every 64 iterations to bound overhead.
        pending["count"] += 1
        if use_checkpoints and pending["count"] % 64 == 0:
            manager.checkpoint()

    device.cpu.ports_out[0x10] = on_checkpoint_port

    boots = 0
    deadline = budget_s
    completed = False
    while sim.now < deadline:
        power.charge_until_on()
        device.reboot()
        boots += 1
        if use_checkpoints and manager.restore() is not None:
            pass  # resumed mid-loop from the snapshot
        try:
            while True:
                device.cpu.step()
        except Halted:
            completed = True
            break
        except PowerFailure:
            continue
    progress = device.memory.read_u16(program.symbols["count"])
    return completed, progress, boots, manager.checkpoints_taken


def run_restore_trial(trim_up: bool, trials: int = 25):
    sim = Simulator(seed=14)
    power = make_wisp_power_system(sim, initial_voltage=2.3)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    manager = edb.board.energy
    deltas = []
    for _ in range(trials):
        power.capacitor.voltage = 2.3
        power.reset_comparator()
        manager.begin_task()
        device.execute_cycles(4000)  # some tethered work
        record = manager.end_task(trim_up=trim_up)
        deltas.append(record.delta_v_true * 1e3)
    return deltas


def measure_discharge_time(interference: bool) -> float:
    sim = Simulator(seed=15)
    power = make_wisp_power_system(sim, distance_m=1.6)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    edb.board.interference_enabled = interference
    if not interference:
        power.inject_current(0.0)
    durations = []
    for _ in range(3):
        power.charge_until_on()
        t0 = sim.now
        try:
            while True:
                device.execute_cycles(500)
        except PowerFailure:
            durations.append(sim.now - t0)
    return statistics.mean(durations)


def test_ablation_checkpointing(benchmark):
    def run_both():
        return run_isa_intermittent(False), run_isa_intermittent(True)

    without, with_cp = benchmark.pedantic(run_both, rounds=1, iterations=1)
    completed_n, progress_n, boots_n, _ = without
    completed_c, progress_c, boots_c, checkpoints = with_cp

    # Without checkpoints the workload is Sisyphean: every boot restarts
    # from main (count reset path) and the budget expires.
    assert not completed_n
    # With checkpoints it completes across several reboots.
    assert completed_c
    assert progress_c == 30000
    assert boots_c > 1
    assert checkpoints > 0

    report(
        "ablation_checkpointing",
        [
            "variant           completed  progress  boots  checkpoints",
            f"restart-from-main {str(completed_n):9s}  {progress_n:8d}  "
            f"{boots_n:5d}  -",
            f"checkpointing     {str(completed_c):9s}  {progress_c:8d}  "
            f"{boots_c:5d}  {checkpoints}",
            "",
            "shape: long workloads need volatile-context checkpoints to make",
            "forward progress on intermittent power (Mementos et al.), which",
            "is the very mechanism that re-executes NV writes in Figure 3",
        ],
    )


def test_ablation_restore_trim(benchmark):
    def run_both():
        return run_restore_trial(True), run_restore_trial(False)

    trim_up, discharge_only = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    mean_up = statistics.mean(trim_up)
    mean_down = statistics.mean(discharge_only)

    assert mean_up > 10.0  # tens of millivolts high (the Table 3 mode)
    assert -10.0 < mean_down < 1.0  # millivolts low (the printf mode)
    assert mean_up > mean_down + 10.0

    report(
        "ablation_restore_trim",
        [
            "restore strategy    mean_dV_mV  sd_mV",
            f"trim-up (Table 3)   {mean_up:10.1f}  "
            f"{statistics.stdev(trim_up):5.1f}",
            f"discharge-only      {mean_down:10.1f}  "
            f"{statistics.stdev(discharge_only):5.1f}",
            "",
            "shape: trim-up biases the restored level high (filter dump);",
            "discharge-only lands just low — the right choice for",
            "high-rate compensation like printf and energy guards",
        ],
    )


def test_ablation_passive_interference(benchmark):
    def run_both():
        return measure_discharge_time(True), measure_discharge_time(False)

    with_leakage, without_leakage = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    relative = abs(with_leakage - without_leakage) / without_leakage

    # Energy-interference-freedom, end to end: attaching EDB changes the
    # observed discharge-cycle length by far less than a percent.
    assert relative < 0.01

    report(
        "ablation_passive_interference",
        [
            f"discharge time, EDB leakage modelled: "
            f"{with_leakage * 1e3:.3f} ms",
            f"discharge time, leakage disabled:     "
            f"{without_leakage * 1e3:.3f} ms",
            f"relative difference: {100 * relative:.4f} %",
            "",
            "shape: passive attachment perturbs the discharge cycle at the",
            "same sub-percent scale as the paper's 0.2 % worst-case bound",
        ],
    )
