"""Ablation: execution models vs. the Figure 3 bug class.

Three implementations of the same append/remove workload run on the
same intermittent power schedule:

1. **plain NV list** (the paper's Figure 3 code) — corrupts and
   crash-loops;
2. **repair-on-boot safe list** — survives by healing the structure at
   every boot;
3. **DINO-style task model** — survives by construction: every
   append/remove is a task whose NV effects commit atomically at the
   boundary.

This is the "emerging programming and execution models" context of
§6.2: the models *prevent* the bug, EDB *explains* it — and EDB remains
attached and useful (watchpoints) under the task model too.
"""

from conftest import report

from repro import EDB, IntermittentExecutor, RunStatus, Simulator
from repro.apps import LinkedListApp
from repro.mcu.hlapi import DeviceAPI
from repro.runtime.nonvolatile import NVLinkedList
from repro.runtime.tasks import Task, TaskProgram
from repro.testing import make_fast_target

DURATION = 8.0


def _task_list_program() -> TaskProgram:
    """The LL workload as two tasks over a task-managed list.

    The list itself lives in FRAM via NVLinkedList, but all *decisions*
    flow through a task-shared "occupancy" variable that commits
    atomically with the phase pointer — so no boot can ever observe a
    half-performed append/remove decision.
    """

    def do_append(api: DeviceAPI, rt) -> None:
        nv_list = NVLinkedList(api, "tll", capacity=4)
        if rt.get("occupied") == 0:
            node = nv_list.node(0)
            node.set("value", rt.get("round"))
            node.set("buf", api.sram_var("tll.buffer", 16))
            nv_list.init()  # idempotent rebuild: the task may re-run
            nv_list.append(nv_list.node_address(0))
            rt.set("occupied", 1)

    def do_remove(api: DeviceAPI, rt) -> None:
        nv_list = NVLinkedList(api, "tll", capacity=4)
        if rt.get("occupied") == 1:
            # Rebuild-then-remove keeps the task idempotent: partial
            # list writes from a killed attempt are overwritten before
            # being trusted.
            nv_list.init()
            nv_list.append(nv_list.node_address(0))
            head = nv_list.header.get("head")
            buf_ptr = nv_list.node_at(head).get("buf")
            nv_list.remove(head)
            api.memset(buf_ptr, 0xAB, 16)
            rt.set("occupied", 0)
            rt.set("round", (rt.get("round") + 1) & 0xFFFF)

    return TaskProgram(
        [Task("append", do_append), Task("remove", do_remove)],
        ["occupied", "round"],
        name="tll",
    )


def run_all():
    out = {}
    # 1. Plain Figure 3 list.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    executor = IntermittentExecutor(
        sim, device, LinkedListApp(update_cycles=0)
    )
    out["plain"] = executor.run(duration=DURATION)

    # 2. Repair-on-boot safe list.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    app = LinkedListApp(use_safe_list=True, update_cycles=0)
    executor = IntermittentExecutor(sim, device, app)
    out["safe"] = executor.run(duration=DURATION)
    out["safe_iterations"] = app.iterations_completed

    # 3. Task model, with EDB watchpoints still flowing.
    sim = Simulator(seed=2)
    device = make_fast_target(sim)
    edb = EDB(sim, device)
    edb.trace("watchpoints")
    program = _task_list_program()
    executor = IntermittentExecutor(sim, device, program, edb=edb.libedb())
    out["tasks"] = executor.run(duration=DURATION)
    out["task_rounds"] = program.runtime.read_committed("round")
    out["task_commits"] = program.runtime.commits
    out["task_recoveries"] = program.runtime.recoveries
    return out


def test_ablation_task_model(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    assert results["plain"].status is RunStatus.CRASHED
    assert results["safe"].status is RunStatus.TIMEOUT
    assert results["safe"].faults == []
    assert results["tasks"].status is RunStatus.TIMEOUT
    assert results["tasks"].faults == []
    assert results["task_rounds"] > 20  # real forward progress
    assert results["tasks"].reboots > 0  # under real intermittence

    report(
        "ablation_task_model",
        [
            "model            status    faults  progress",
            f"plain NV list    {results['plain'].status.value:8s}  "
            f"{len(results['plain'].faults):6d}  crash-looped",
            f"repair-on-boot   {results['safe'].status.value:8s}  "
            f"{len(results['safe'].faults):6d}  "
            f"{results['safe_iterations']} iterations",
            f"task model       {results['tasks'].status.value:8s}  "
            f"{len(results['tasks'].faults):6d}  "
            f"{results['task_rounds']} rounds, "
            f"{results['task_commits']} commits, "
            f"{results['task_recoveries']} redo-recoveries",
            "",
            "shape: the Figure 3 bug class is eliminated by either repair",
            "or task atomicity; EDB remains attached and useful under both",
        ],
    )
