"""Section 4.1.3 / Section 2.2: instrumentation energy-cost spectrum.

Quantifies the per-event energy cost of the signalling mechanisms the
paper compares:

- EDB code marker (watchpoint): one GPIO-holding cycle — "practically
  energy-interference-free";
- LED blinking (the ad hoc embedded tracing idiom): raises the WISP's
  draw from ~1 mA to >5 mA (§2.2's five-fold figure);
- UART event logging: hundreds of microjoules per message burst.

The asserted shape: marker cost is orders of magnitude below both.
"""

from conftest import fmt_row, report

from repro import Simulator, TargetDevice, make_wisp_power_system
from repro.sim import units

EVENTS = 100


def _fresh_device(seed=40):
    sim = Simulator(seed=seed)
    power = make_wisp_power_system(sim)
    power.source.enabled = False
    device = TargetDevice(sim, power)
    power.capacitor.voltage = 2.4
    power.reset_comparator()
    return sim, device


def measure_marker() -> float:
    _, device = _fresh_device()
    e0 = device.power.capacitor.energy
    for _ in range(EVENTS):
        device.code_marker(1)
    return (e0 - device.power.capacitor.energy) / EVENTS


def _per_event(device, action, events=20) -> float:
    """Average per-event energy, recharging between events.

    Recharging avoids the measurement itself browning the device out —
    an LED event costs percent-scale energy, so twenty back-to-back
    would empty the 47 uF store.
    """
    total = 0.0
    for _ in range(events):
        device.power.capacitor.voltage = 2.4
        device.power.reset_comparator()
        e0 = device.power.capacitor.energy
        action()
        total += e0 - device.power.capacitor.energy
    return total / events


def measure_led_blink(blink_cycles: int = 4000) -> float:
    """One 1 ms LED blink per traced event (the ad hoc idiom)."""
    _, device = _fresh_device()

    def blink():
        device.gpio.write("led", True)
        device.execute_cycles(blink_cycles)
        device.gpio.write("led", False)

    return _per_event(device, blink)


def measure_uart_log() -> float:
    """One 16-byte log record per traced event."""
    _, device = _fresh_device()
    return _per_event(
        device, lambda: device.uart.transmit(b"event 00001234\r\n")
    )


def measure_baseline(cycles: int = 4000) -> float:
    """The same 1 ms of computation without any instrumentation."""
    _, device = _fresh_device()
    return _per_event(device, lambda: device.execute_cycles(cycles))


def test_sec413_marker_cost(benchmark):
    def run_all():
        return {
            "marker": measure_marker(),
            "led": measure_led_blink(),
            "uart": measure_uart_log(),
            "baseline_1ms": measure_baseline(),
        }

    costs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Marker: single-cycle scale (sub-nanojoule).
    assert costs["marker"] < 5 * units.NJ
    # LED blink: the 5x current figure -> ~5x the baseline millisecond.
    assert 3.0 < (costs["led"] / costs["baseline_1ms"]) < 8.0
    # Ordering: marker << uart < led (per event at these sizes).
    assert costs["marker"] * 100 < costs["uart"]
    assert costs["marker"] * 1000 < costs["led"]

    full = 135.4 * units.UJ
    lines = ["mechanism        nJ/event     %_of_store   vs_marker"]
    for name in ("marker", "uart", "led", "baseline_1ms"):
        cost = costs[name]
        lines.append(
            f"{name:15s}"
            + fmt_row(
                [
                    round(cost / units.NJ, 3),
                    round(100 * cost / full, 4),
                    round(cost / costs["marker"], 1),
                ],
                [10, 12, 11],
            )
        )
    lines += [
        "",
        "paper: GPIO marker cost 'negligible' (one cycle of holding a "
        "pin); LED raises draw ~1 mA -> >5 mA (5x)",
        f"measured LED/baseline power ratio: "
        f"{costs['led'] / costs['baseline_1ms']:.1f}x",
    ]
    report("sec413_marker_cost", lines)
