#!/bin/sh
# Repository check: the tier-1 test suite plus the quick perf gate.
#
# Tier-1 (must stay green):     PYTHONPATH=src python -m pytest -x -q
# Tier-1-adjacent (perf gate):  python -m repro.perf --check --quick
#
# The perf gate compares against benchmarks/perf_baseline.json with the
# relaxed --quick tolerance; it catches order-of-magnitude cliffs, not
# small regressions — use `python -m repro.perf --check --repeats 3`
# for a real measurement (see docs/PERF.md).
set -e
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== fuzz smoke: fixed-seed coverage-guided canary =="
python -m pytest -q -m fuzz_smoke

echo "== debug-server smoke: spawn, session, run, trace, shutdown =="
python -m pytest -q -m debug_smoke

echo "== chaos smoke: fixed-seed host-fault injection, golden bytes =="
python -m pytest -q -m chaos_smoke

echo "== batch smoke: lane-vs-scalar byte-identity canary =="
python -m pytest -q -m batch_smoke

echo "== tier-1 under REPRO_NO_BATCH=1: scalar-path parity =="
REPRO_NO_BATCH=1 python -m pytest -x -q

echo "== tier-1-adjacent: perf gate =="
python -m repro.perf --check --quick --out /tmp/BENCH_perf_check.json
