#!/usr/bin/env python3
"""Design-space exploration + emulated intermittence.

Two workflows that precede deployment of an energy-harvesting app:

1. **Explore the power design space** (CCTS-style, §6.1): sweep
   capacitor sizes and reader distances, and see where the application
   would be sustained, intermittent, or dead.

2. **Emulate intermittence on the bench** (§4.2): with no harvester at
   all, use EDB's charge/discharge commands to produce a deterministic
   charge/discharge pattern — including a recorded "weak harvest"
   pattern — and reproduce an intermittence bug on demand.

Run:  python examples/design_space.py
"""

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.apps import LinkedListApp
from repro.core.emulation import IntermittenceEmulator
from repro.explore import DesignSpaceExplorer
from repro.sim import units


def explore() -> None:
    print("=== design-space sweep (capacitance x reader distance) ===")
    explorer = DesignSpaceExplorer()
    points = explorer.sweep(
        capacitances=[10 * units.UF, 47 * units.UF, 100 * units.UF],
        distances=[0.8, 1.4, 2.0, 3.0],
    )
    print(DesignSpaceExplorer.render_table(points))
    print()
    intermittent = [p for p in points if not p.sustained
                    and p.charge_time_s != float("inf")]
    if intermittent:
        best = max(intermittent, key=lambda p: p.duty_cycle)
        print(f"best intermittent duty cycle: {100 * best.duty_cycle:.1f}% "
              f"at {best.capacitance / units.UF:.0f} uF / "
              f"{best.distance_m} m\n")


def emulate() -> None:
    print("=== emulated intermittence (no harvester, EDB-driven) ===")
    sim = Simulator(seed=9)
    power = make_wisp_power_system(sim)
    target = TargetDevice(sim, power)
    edb = EDB(sim, target)

    app = LinkedListApp(update_cycles=0)
    emulator = IntermittenceEmulator(edb, app, edb_linked=False)
    # Replay a "weak harvest" pattern: per-cycle turn-on levels sweep so
    # the brown-out point walks across the program deterministically.
    levels = [2.4 + 0.004 * (i % 40) for i in range(120)]
    result = emulator.run(cycles=120, turn_on_voltage=levels,
                          stop_on_fault=True)
    print(f"  {result}")
    faulted = [c for c in result.cycles if c.outcome == "fault"]
    if faulted:
        cycle = faulted[0]
        print(f"  the Figure 3 bug reproduced in emulated cycle "
              f"{cycle.index} (turn-on {cycle.turn_on_voltage:.3f} V):")
        print(f"    {cycle.detail}")
        print("  -> the same pattern reproduces the same fault on every "
              "run: deterministic")
        print("     intermittence debugging, no RF environment required.")


def main() -> None:
    explore()
    emulate()


if __name__ == "__main__":
    main()
