#!/usr/bin/env python3
"""Beyond the paper: task-based execution, the profiler, and VCD export.

Three library extensions working together:

1. run a workload under the DINO-style task model (task-atomic NV
   updates survive arbitrary power failures),
2. profile it with the watchpoint-based :class:`EnergyProfiler`,
3. dump the capacitor waveform to a VCD file you can open in GTKWave.

Run:  python examples/task_model_and_tools.py
"""

import pathlib
import tempfile

from repro import EDB, IntermittentExecutor, Simulator
from repro.core.profiler import EnergyProfiler
from repro.instruments import Oscilloscope
from repro.runtime.tasks import Task, TaskProgram
from repro.sim import units
from repro.sim.vcd import scope_to_vcd, write_vcd
from repro.testing import make_fast_target


def build_program() -> TaskProgram:
    """A two-task pipeline: sample (simulated) then accumulate."""

    def sample(api, rt):
        api.edb_watchpoint(1)
        reading = int(api.adc_read("vcap") * 1000)
        rt.set("last_sample", reading & 0xFFFF)
        api.compute(2000)

    def accumulate(api, rt):
        total = (rt.get("total") + rt.get("last_sample")) & 0xFFFF
        rt.set("total", total)
        rt.set("rounds", (rt.get("rounds") + 1) & 0xFFFF)
        api.compute(1000)
        api.edb_watchpoint(2)

    return TaskProgram(
        [Task("sample", sample), Task("accumulate", accumulate)],
        ["last_sample", "total", "rounds"],
        name="pipeline",
    )


def main() -> None:
    sim = Simulator(seed=17)
    target = make_fast_target(sim)
    edb = EDB(sim, target)
    edb.trace("watchpoints")

    scope = Oscilloscope(sim, sample_rate=2 * units.KHZ)
    scope.add_channel("vcap", lambda: target.power.vcap)
    scope.add_digital_channel("tethered", lambda: target.power.is_tethered)
    scope.start()

    program = build_program()
    executor = IntermittentExecutor(sim, target, program, edb=edb.libedb())
    print("running the task pipeline for 5 s of harvested power...")
    result = executor.run(duration=5.0)
    print(f"  {result}")

    runtime = program.runtime
    print(f"  committed rounds: {runtime.read_committed('rounds')}, "
          f"commits: {runtime.commits}, redo-recoveries: "
          f"{runtime.recoveries}")
    print("  (every reboot either rolled the current task back or redid "
          "its commit — never half)\n")

    print("=== energy profile (watchpoint 1 -> 2 = one pipeline round) ===")
    profiler = EnergyProfiler(
        edb.monitor,
        target.constants.capacitance,
        full_energy=target.constants.full_energy,
    )
    profiler.define_region("pipeline-round", 1, 2)
    print(" ", profiler.stats("pipeline-round").render(
        target.constants.full_energy))
    print(profiler.histogram("pipeline-round", bins=8, width=30))

    vcd_path = pathlib.Path(tempfile.gettempdir()) / "edb_pipeline.vcd"
    write_vcd(scope_to_vcd(scope, module="wisp"), vcd_path)
    print(f"\nwaveform dumped to {vcd_path} "
          f"({vcd_path.stat().st_size} bytes) — open it in GTKWave")


if __name__ == "__main__":
    main()
