#!/usr/bin/env python3
"""Debugging and tuning an RFID application with EDB (§5.3.4, Fig. 12).

The WISP RFID firmware answers a continuously inventorying reader while
EDB passively records RFID messages *and* the energy level on one
timeline.  The script reproduces the paper's characterisation — how
often the tag answers, how many replies per second — and prints a
zoomed message/energy view of one discharge cycle, the paper's lower
panel.

Run:  python examples/rfid_monitoring.py
"""

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import RfidFirmwareApp
from repro.io.rfid import RfidChannel, RFIDReader

DURATION = 10.0
DISTANCE = 1.02  # metres from the reader antenna


def main() -> None:
    sim = Simulator(seed=31)
    power = make_wisp_power_system(sim, distance_m=DISTANCE, fading_sigma=0.5)
    target = TargetDevice(sim, power)

    edb = EDB(sim, target)
    edb.trace("energy")
    edb.trace("rfid")

    channel = RfidChannel(sim, distance_m=DISTANCE)
    # EDB taps the demodulated RX and backscatter TX lines externally
    # and decodes them itself — messages are visible even when the tag
    # fails to parse them.
    channel.command_taps.append(
        lambda d: edb.board.on_rfid_message(
            {"dir": "rx", "kind": d.original.kind.value,
             "corrupted": d.corrupted}
        )
    )
    channel.reply_taps.append(
        lambda r: edb.board.on_rfid_message(
            {"dir": "tx", "kind": r.kind.value}
        )
    )

    reader = RFIDReader(sim, channel)
    reader.start()
    app = RfidFirmwareApp(channel)
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    print(f"running {DURATION:.0f} s with the reader at {DISTANCE} m...")
    result = executor.run(duration=DURATION)
    print(f"  {result}\n")

    print("=== characterisation (the tuning numbers) ===")
    stats = reader.stats
    print(f"  queries sent:   {stats.queries_sent}")
    print(f"  replies heard:  {stats.replies_heard}")
    print(f"  response rate:  {100 * stats.response_rate:.0f} %   "
          "(paper: 86 %)")
    print(f"  replies/second: {reader.replies_per_second(DURATION):.1f}"
          "    (paper: ~13)")
    print(f"  commands the tag failed to decode (corrupted in flight): "
          f"{app.decode_failures}")
    print(f"  power cycles while serving: {result.reboots}\n")

    print("=== one discharge cycle, messages correlated with energy ===")
    events = edb.monitor.stream_events("rfid")
    # Find a busy 300 ms window mid-run.
    t0 = events[len(events) // 2].time
    window = [e for e in events if t0 <= e.time < t0 + 0.3]
    for event in window:
        direction = "->" if event.value["dir"] == "rx" else "<-"
        flag = " (corrupted)" if event.value.get("corrupted") else ""
        print(f"  {event.time:7.3f} s  Vcap={event.vcap:.3f} V  "
              f"{direction} {event.value['kind']}{flag}")
    print("\n  (a reply following each decodable query, while Vcap "
          "sawtooths — the Figure 12 story)")


if __name__ == "__main__":
    main()
