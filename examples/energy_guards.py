#!/usr/bin/env python3
"""Energy guards: instrument a debug build without killing it (§5.3.2).

The Fibonacci application's debug build runs an O(n) consistency check
at every boot.  On harvested energy, the check's cost grows with the
list until it consumes entire charge/discharge cycles — the application
wedges (the paper saw this at ~555 items).  Wrapping the check in EDB
energy guards moves its cost onto tethered power and the application
runs to completion, checks included.

Run:  python examples/energy_guards.py          (fast, scaled target)
      python examples/energy_guards.py --full   (paper-scale 47 uF WISP)
"""

import sys

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import FibonacciApp
from repro.testing import make_fast_target


def build_rig(full_scale: bool, seed: int = 5):
    sim = Simulator(seed=seed)
    if full_scale:
        power = make_wisp_power_system(sim, distance_m=1.6, fading_sigma=0.5)
        target = TargetDevice(sim, power)
        app_kwargs = {"capacity": 900}
        duration = 60.0
    else:
        target = make_fast_target(sim, fading_sigma=0.5)
        app_kwargs = {"capacity": 400, "check_node_cycles": 2000}
        duration = 15.0
    return sim, target, app_kwargs, duration


def run(full_scale: bool, guarded: bool):
    sim, target, app_kwargs, duration = build_rig(full_scale)
    edb = EDB(sim, target) if guarded else None
    app = FibonacciApp(
        debug_build=True, use_energy_guard=guarded, **app_kwargs
    )
    executor = IntermittentExecutor(
        sim, target, app, edb=edb.libedb() if edb else None
    )
    result = executor.run(duration=duration)
    items = target.memory.read_u16(executor.api.nv_var("fib.alloc"))
    return result, items, app


def main() -> None:
    full_scale = "--full" in sys.argv

    print("=== Debug build WITHOUT energy guards ===")
    result, items, app = run(full_scale, guarded=False)
    print(f"  {result}")
    print(f"  list wedged at {items} items after {app.checks_run} "
          "boot-time checks")
    print("  (each check now consumes the whole charge cycle; the main "
          "loop gets nothing)\n")

    print("=== Debug build WITH energy guards ===")
    result, items, app = run(full_scale, guarded=True)
    print(f"  {result}")
    print(f"  list reached {items} items; {app.checks_run} checks ran "
          "on tethered power")
    print(f"  consistency violations detected along the way: "
          f"{app.check_failures}")
    print("  -> same instrumentation, zero energy interference.")


if __name__ == "__main__":
    main()
