#!/usr/bin/env python3
"""Tracing and profiling the activity-recognition app (§5.3.3).

Reproduces the Figure 10 workflow: instrument the AR loop with
watchpoints and an energy-interference-free printf, run on harvested
power, and derive — from EDB's passive streams alone —

- a live trace of intermediate classification results,
- per-iteration time and energy profiles,
- reference classification statistics from watchpoint counts that
  cross-check the statistics the app keeps in non-volatile memory.

Run:  python examples/activity_profiling.py
"""

import statistics

from repro import (
    EDB,
    IntermittentExecutor,
    Simulator,
    TargetDevice,
    make_wisp_power_system,
)
from repro.apps import ActivityRecognitionApp
from repro.apps.sensors import (
    Accelerometer,
    I2C_ADDRESS,
    MotionProfile,
    MotionSegment,
)


def main() -> None:
    sim = Simulator(seed=23)
    power = make_wisp_power_system(sim, distance_m=1.6, fading_sigma=1.0)
    target = TargetDevice(sim, power)

    # Ground truth: alternating 0.5 s still / 0.5 s walking.
    profile = MotionProfile(
        [MotionSegment(False, 0.5), MotionSegment(True, 0.5)]
    )
    target.i2c.attach(I2C_ADDRESS, Accelerometer(sim, profile))

    edb = EDB(sim, target)
    edb.trace("watchpoints")
    printed = []
    edb.on_printf(printed.append)

    app = ActivityRecognitionApp(output="edb")
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    print("running 4 s of harvested-power execution...")
    result = executor.run(duration=4.0)
    print(f"  {result}\n")

    print("=== live printf trace (first 10 lines) ===")
    for line in printed[:10]:
        print(f"  [printf] {line}")
    print(f"  ... {len(printed)} lines total\n")

    monitor = edb.monitor
    capacitance = target.constants.capacitance
    full = target.constants.full_energy

    print("=== per-iteration profile from watchpoint snapshots ===")
    costs = monitor.energy_between(1, 1, capacitance)
    times = monitor.watchpoint_stats(1).times
    diffs = [b - a for a, b in zip(times, times[1:]) if b - a < 0.05]
    print(f"  iterations profiled: {len(costs)}")
    print(f"  energy: median {100 * statistics.median(costs) / full:.2f} % "
          f"of the 47 uF store "
          f"(p90 {100 * sorted(costs)[int(0.9 * len(costs))] / full:.2f} %)")
    print(f"  time:   median {statistics.median(diffs) * 1e3:.2f} ms\n")

    print("=== reference statistics from watchpoint counts ===")
    wp_stationary = monitor.watchpoint_stats(2).hits
    wp_moving = monitor.watchpoint_stats(3).hits
    print(f"  watchpoint 2 (stationary path): {wp_stationary}")
    print(f"  watchpoint 3 (moving path):     {wp_moving}")

    stats = ActivityRecognitionApp.read_stats(executor.api)
    print(f"  app's NV statistics:            {stats}")
    agreement = (
        wp_stationary == stats["stationary"] and wp_moving == stats["moving"]
    )
    print(f"  external trace vs internal stats agree: {agreement}")
    print("  (small disagreements are themselves diagnostic: they mark "
          "iterations cut by a reboot between the counter update and "
          "the watchpoint)")

    print("\n=== iteration success rate ===")
    rate = app.iterations_completed / max(1, app.iterations_attempted)
    print(f"  {app.iterations_completed}/{app.iterations_attempted} "
          f"iterations completed ({100 * rate:.0f} %)")
    print("  paper's Table 4 working point: 82 % with EDB printf")


if __name__ == "__main__":
    main()
