#!/usr/bin/env python3
"""The console demo, replayed over the JSON-RPC debug server.

Mirrors ``examples/interactive_console.py`` — status, energy tracing,
charge, intermittent run, FRAM inspection, an energy breakpoint with a
scripted inspect-and-recharge action, and a final discharge — but every
step travels over the wire: the script spawns ``python -m
repro.debug.server`` as a stdio subprocess and drives it with
:class:`repro.debug.client.DebugClient`.

Run:  python examples/debug_server_client.py
      python examples/debug_server_client.py --tcp HOST:PORT
          (against an already-running ``edb-server --port N``)
"""

import sys

from repro.debug.client import DebugClient
from repro.mcu.memory import FRAM_BASE


def main() -> None:
    if len(sys.argv) > 2 and sys.argv[1] == "--tcp":
        host, _, port = sys.argv[2].rpartition(":")
        client = DebugClient.connect_tcp(host or "127.0.0.1", int(port))
    else:
        client = DebugClient.spawn_stdio()

    with client:
        info = client.ping()
        print(f"server answered: repro {info['version']}")

        session = client.create_session(
            app="fibonacci", seed=42, iterations=198, distance_m=1.6
        )
        print(f"session {session.id}: {session.info['app']} on "
              f"{session.info['power']} power, Vcap={session.info['vcap']:.3f} V")

        session.trace("energy")
        session.trace("watchpoints")
        print(f"charged to {session.charge(2.4):.3f} V")

        # Energy breakpoint at 2.0 V with a scripted per-stop action
        # list: inspect the list header, then recharge and resume —
        # what a console user would type into the live break session.
        # Breakpoints are serviced synchronously inside `run`, so the
        # actions ride along and `break.log` returns the transcripts.
        session.on_break([
            {"op": "read_u16", "address": FRAM_BASE},
            {"op": "charge", "volts": 2.3},
        ])
        handle = session.break_energy(2.0)

        result = session.run(2.0)
        print(f"run finished: {result['status']}, boots={result['boots']}, "
              f"reboots={result['reboots']}, Vcap={result['vcap']:.3f} V")

        stops = session.break_log()["stops"]
        print(f"energy breakpoint (handle {handle}) stopped the target "
              f"{len(stops)} time(s); first stops:")
        for stop in stops[:3]:
            header = stop["results"][0]["value"]
            print(f"  t={stop['time'] * 1e3:7.2f} ms  Vcap={stop['vcap']:.3f} V  "
                  f"header=0x{header:04X}")
        session.remove_breakpoint(handle)

        # The Fibonacci list header lives at the first FRAM static.
        data = session.read_mem(FRAM_BASE, 6)
        print(f"0x{FRAM_BASE:04X}: {data.hex(' ')}")

        # Trace polling is cursor-based: page through without loss.
        cursor, samples = 0, 0
        while True:
            page = session.poll_trace(cursor=cursor, limit=512, stream="energy")
            samples += len(page["events"])
            cursor = page["next_cursor"]
            if page["remaining"] == 0:
                break
        print(f"polled {samples} energy samples over RPC")

        print(f"discharged to {session.discharge(1.9):.3f} V")
        print(f"final state: {session.status()['state']}")
        session.close()


if __name__ == "__main__":
    main()
