#!/usr/bin/env python3
"""The EDB host console (Table 1): scripted and interactive use.

Drives the console through a realistic session against a simulated
WISP running the Fibonacci app: arm breakpoints, manipulate the energy
level, run intermittently, inspect memory, and read the watchpoint
statistics — the exact command vocabulary of the paper's Table 1.

Run:  python examples/interactive_console.py            (scripted demo)
      python examples/interactive_console.py --repl     (interactive)
      or simply: edb-console                             (installed entry point)
"""

import sys

from repro import EDB, IntermittentExecutor, Simulator, TargetDevice
from repro import make_wisp_power_system
from repro.apps import FibonacciApp
from repro.core.console import DebugConsole
from repro.mcu.memory import FRAM_BASE


def main() -> None:
    sim = Simulator(seed=42)
    power = make_wisp_power_system(sim, distance_m=1.6)
    target = TargetDevice(sim, power)
    edb = EDB(sim, target)
    app = FibonacciApp(debug_build=False, capacity=200)
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    console = DebugConsole(edb, executor=executor, echo=print)

    if "--repl" in sys.argv:
        console.repl()
        return

    script = [
        "help",
        "status",
        "trace energy",
        "trace watchpoints",
        "charge 2.4",
        "status",
        "run 2.0",
        "status",
        # The Fibonacci list header lives at the first FRAM static.
        f"read 0x{FRAM_BASE:04X} 6",
        "break energy 2.0",
        "run 0.5",
        "wp",
        "discharge 1.9",
        "status",
    ]
    for line in script:
        print(f"\nedb> {line}")
        console.execute(line)


if __name__ == "__main__":
    main()
