#!/usr/bin/env python3
"""Quickstart: simulate a WISP, attach EDB, watch an intermittence bug.

This is the 5-minute tour of the library:

1. build a simulated energy-harvesting target (the WISP 5 of the paper),
2. run the paper's linked-list test program on continuous power — fine,
3. run it on harvested, intermittent power — it corrupts memory,
4. attach EDB, add one keep-alive assert, and catch the bug live.

Run:  python examples/quickstart.py
"""

from repro import EDB, IntermittentExecutor, Simulator
from repro.apps import LinkedListApp
from repro.testing import make_fast_target


def main() -> None:
    print("=== 1. Continuous power (what a JTAG debugger imposes) ===")
    sim = Simulator(seed=2)
    target = make_fast_target(sim)
    app = LinkedListApp(update_cycles=0, max_iterations=2000)
    executor = IntermittentExecutor(sim, target, app)
    result = executor.run_continuous(duration=5.0)
    print(f"  {result}")
    print(f"  -> {app.iterations_completed} iterations, zero faults. "
          "The bug is invisible here.\n")

    print("=== 2. Intermittent (harvested) power ===")
    sim = Simulator(seed=2)
    target = make_fast_target(sim)
    app = LinkedListApp(update_cycles=0)
    executor = IntermittentExecutor(sim, target, app)
    result = executor.run(duration=10.0, stop_on_fault=True)
    print(f"  {result}")
    print(f"  -> after {result.boots} boots, a reboot inside append() "
          "stranded the tail pointer;")
    print(f"     the next remove() went wild: {result.faults[0]}\n")

    print("=== 3. Same run, with EDB and one keep-alive assert ===")
    sim = Simulator(seed=2)
    target = make_fast_target(sim)
    edb = EDB(sim, target)

    def on_assert(event, session):
        print(f"  *** assert failed at {event.time * 1e3:.1f} ms: "
              f"{event.message}")
        print(f"      target tethered at Vcap = {session.vcap():.3f} V "
              "for live inspection")
        header = executor.api.nv_var("list.ll.header", 6)
        head = session.read_u16(header)
        tail = session.read_u16(header + 2)
        print(f"      list state: head=0x{head:04X} tail=0x{tail:04X} "
              f"{'(INCONSISTENT)' if head != tail else ''}")

    edb.on_assert(on_assert)
    app = LinkedListApp(use_assert=True, update_cycles=0)
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    result = executor.run(duration=10.0)
    print(f"  {result}")
    print("  -> the inconsistency was caught at its source, before the "
          "wild write,")
    print("     with the device still alive on tethered power.")
    edb.release()


if __name__ == "__main__":
    main()
