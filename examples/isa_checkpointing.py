#!/usr/bin/env python3
"""The ISA core and Mementos-style checkpointing under intermittence.

Background machinery for the paper's setting (§2): a long computation
written against the 16-bit ISA makes no forward progress on harvested
power when every reboot restarts ``main`` — and completes once the
volatile context (registers + stack) is checkpointed into FRAM.  The
example also shows EDB-style program-event monitoring of ISA code via
the ``mark`` instruction.

Run:  python examples/isa_checkpointing.py
"""

from repro import PowerFailure, Simulator, TargetDevice, make_wisp_power_system
from repro.mcu.assembler import assemble, disassemble
from repro.mcu.cpu import Halted
from repro.mcu.memory import FRAM_BASE
from repro.runtime.checkpoint import CheckpointManager

PROGRAM = """
        .org 0xA000
result: .word 0
        .equ N, 20000
start:  mov #0, r4            ; loop counter   (volatile!)
        mov #0, r5            ; running sum    (volatile!)
loop:   add #1, r4
        add r4, r5
        out r4, #0x10         ; checkpoint-request port
        cmp #N, r4
        jnz loop
        mov r5, &result
        mark #1               ; EDB watchpoint: completion
        halt
"""


def run(use_checkpoints: bool, budget_s: float = 3.0):
    sim = Simulator(seed=13)
    power = make_wisp_power_system(sim, distance_m=1.6)
    target = TargetDevice(sim, power)
    program = assemble(PROGRAM)
    target.load_program(program)
    manager = CheckpointManager(target, FRAM_BASE + 0x8000)
    manager.erase()

    iteration = {"n": 0}

    def checkpoint_port(value: int) -> None:
        iteration["n"] += 1
        if use_checkpoints and iteration["n"] % 64 == 0:
            manager.checkpoint()

    target.cpu.ports_out[0x10] = checkpoint_port

    boots = 0
    completed = False
    while sim.now < budget_s and not completed:
        power.charge_until_on()
        target.reboot()
        boots += 1
        if use_checkpoints:
            manager.restore()
        try:
            while True:
                target.cpu.step()
        except Halted:
            completed = True
        except PowerFailure:
            continue
    result = target.memory.read_u16(program.symbols["result"])
    return completed, result, boots, manager


def main() -> None:
    program = assemble(PROGRAM)
    print("=== the workload (disassembled from its binary image) ===")
    for address, text in disassemble(program)[:8]:
        print(f"  {address:04X}: {text}")
    print(f"  ... {program.size_bytes} bytes at 0x{program.origin:04X}\n")

    print("=== restart-from-main (no checkpoints) ===")
    completed, result, boots, _ = run(use_checkpoints=False)
    print(f"  completed: {completed}  after {boots} boots "
          f"(result word: {result})")
    print("  -> Sisyphean: every reboot discards the registers and "
          "starts over.\n")

    print("=== with volatile-context checkpoints ===")
    completed, result, boots, manager = run(use_checkpoints=True)
    expected = (20000 * 20001 // 2) & 0xFFFF
    print(f"  completed: {completed}  after {boots} boots "
          f"(result word: {result}, expected {expected})")
    print(f"  checkpoints taken: {manager.checkpoints_taken}, "
          f"restores: {manager.restores}")
    print("  -> progress is stitched across power failures — and note "
          "that every restore")
    print("     is an implicit control-flow jump back in time, the very "
          "mechanism behind")
    print("     the paper's Figure 3 bug.")


if __name__ == "__main__":
    main()
